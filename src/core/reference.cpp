#include "core/reference.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "tangle/view_cache.hpp"

namespace tanglefl::core {

std::vector<tangle::TxIndex> top_priority_indices(
    std::span<const double> priorities, std::size_t take) {
  // Pair ordering matches the old priority_queue<pair<double, TxIndex>>
  // pop sequence bit-exactly: descending priority, ties to the newest
  // (highest) index. Indices are unique, so the order is a strict total
  // order and nth_element + sort of the prefix reproduces it.
  using Entry = std::pair<double, tangle::TxIndex>;
  std::vector<Entry> entries;
  entries.reserve(priorities.size());
  for (tangle::TxIndex i = 0; i < priorities.size(); ++i) {
    entries.emplace_back(priorities[i], i);
  }
  take = std::min(take, entries.size());
  if (take < entries.size()) {
    std::nth_element(entries.begin(),
                     entries.begin() + static_cast<std::ptrdiff_t>(take),
                     entries.end(), std::greater<Entry>());
    entries.resize(take);
  }
  std::sort(entries.begin(), entries.end(), std::greater<Entry>());

  std::vector<tangle::TxIndex> indices;
  indices.reserve(entries.size());
  for (const Entry& entry : entries) indices.push_back(entry.second);
  return indices;
}

namespace {

ReferenceResult choose_reference_impl(const tangle::TangleView& view,
                                      const tangle::ModelStore& store,
                                      std::vector<double> confidences,
                                      std::vector<double> ratings,
                                      const ReferenceConfig& config) {
  // Top-k over confidence * rating, exactly as in Algorithm 1. Ties (e.g.
  // the all-zero priorities right after genesis) resolve to the newest
  // transaction so early rounds track fresh training results.
  //
  // Milestone pruning: frozen history is excluded from candidacy — its
  // payloads may have been released and its confidence/rating are pinned
  // approximations. Zeroed priorities plus the newest-index tie-breaking
  // keep every selected index in the live window; `take` is clamped to the
  // window so a frozen transaction can never be forced in.
  const tangle::TxIndex floor = view.tangle().prune_floor();
  std::vector<double> priorities(view.size());
  for (tangle::TxIndex i = 0; i < view.size(); ++i) {
    priorities[i] = i < floor ? 0.0 : confidences[i] * ratings[i];
  }
  const std::size_t take = std::max<std::size_t>(
      1, std::min({config.num_reference_models, view.size(),
                   view.size() - floor}));

  ReferenceResult result;
  result.transactions = top_priority_indices(priorities, take);
  std::vector<const nn::ParamVector*> payloads;
  result.payloads.reserve(result.transactions.size());
  payloads.reserve(result.transactions.size());
  for (const tangle::TxIndex index : result.transactions) {
    const tangle::PayloadId payload = view.tangle().transaction(index).payload;
    result.payloads.push_back(payload);
    payloads.push_back(&store.get(payload));
  }
  result.params = nn::average_params(payloads);
  return result;
}

}  // namespace

ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store, Rng& rng,
                                 const ReferenceConfig& config) {
  assert(view.size() > 0);
  return choose_reference_impl(
      view, store, tangle::compute_confidences(view, rng, config.confidence),
      tangle::compute_ratings(view), config);
}

ReferenceResult choose_reference(const tangle::TangleView& view,
                                 const tangle::ModelStore& store,
                                 const tangle::ViewCacheEntry& cones, Rng& rng,
                                 const ReferenceConfig& config) {
  assert(view.size() > 0);
  return choose_reference_impl(
      view, store,
      tangle::compute_confidences(view, cones, rng, config.confidence),
      tangle::compute_ratings(cones), config);
}

}  // namespace tanglefl::core
