// Accuracy-biased tip selection — the first Section VI outlook item:
// "evaluate the model on local data during the tip selection algorithm,
// introducing model performance as a bias in the weighted random walk.
// This could lead to clusters of federated nodes with similar data working
// on separate sub-tangles."
//
// The walk's transition probability combines the structural cumulative
// weight with the payload's loss on the walking node's local validation
// data:
//
//   P(current -> child) ∝ exp(alpha * w_child - beta * loss_child)
//
// beta = 0 recovers the standard walk; larger beta steers the walk towards
// branches whose models already fit the local distribution, letting nodes
// with similar data converge on shared sub-tangles (personalization).
// Payload losses are memoized per (node step) in a LocalLossCache, so each
// transaction is evaluated at most once regardless of walk count.
#pragma once

#include <memory>
#include <unordered_map>

#include "data/dataset.hpp"
#include "data/training.hpp"
#include "nn/model.hpp"
#include "support/rng.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tip_selection.hpp"

namespace tanglefl {
class ThreadPool;
}

namespace tanglefl::core {

class BatchedSplit;
class EvalEngine;

/// Memoized evaluation of transaction payloads on one validation split.
/// The per-step memo (keyed by transaction) bounds walk-bias probes to one
/// per transaction regardless of walk count; with an eval engine attached
/// the probe itself also hits the engine's cross-round payload cache.
class LocalLossCache {
 public:
  /// Legacy mode: a throwaway model instance per distinct transaction.
  LocalLossCache(const tangle::ModelStore& store,
                 const nn::ModelFactory& factory,
                 const data::DataSplit& validation)
      : store_(&store), factory_(&factory), validation_(&validation) {}

  /// Engine mode: probes go through `engine`'s payload cache and model
  /// pool. A null `batched` (empty validation) degenerates to the
  /// structural walk, as in legacy mode. `pool` (optional, not owned)
  /// drives the fused multi-model pass of prefetch().
  LocalLossCache(EvalEngine& engine, const tangle::ModelStore& store,
                 std::shared_ptr<const BatchedSplit> batched,
                 ThreadPool* pool = nullptr)
      : store_(&store),
        engine_(&engine),
        batched_(std::move(batched)),
        pool_(pool) {}

  /// Loss of `index`'s payload on the validation split (cached).
  double loss(const tangle::TangleView& view, tangle::TxIndex index);

  /// Batch-probes every not-yet-memoized index through the engine's fused
  /// multi-model pass, so a walk branch pays one grouped evaluation instead
  /// of one standalone forward per approver. Memo contents, counters, and
  /// subsequent loss() results are identical to probing serially in
  /// `indices` order. No-op in legacy mode.
  void prefetch(const tangle::TangleView& view,
                std::span<const tangle::TxIndex> indices);

  /// Forward evaluations this cache instance paid for (engine cache hits
  /// are free and not counted).
  std::size_t evaluations() const noexcept { return evaluations_; }

 private:
  const tangle::ModelStore* store_;
  const nn::ModelFactory* factory_ = nullptr;
  const data::DataSplit* validation_ = nullptr;
  EvalEngine* engine_ = nullptr;
  std::shared_ptr<const BatchedSplit> batched_;
  ThreadPool* pool_ = nullptr;
  std::unordered_map<tangle::TxIndex, double> cache_;
  std::size_t evaluations_ = 0;
};

struct BiasedWalkConfig {
  double alpha = 0.01;  // structural (cumulative weight) bias
  double beta = 1.0;    // local-performance bias; 0 = standard walk
};

/// One biased walk over `view`; returns the reached tip.
tangle::TxIndex biased_random_walk_tip(
    const tangle::TangleView& view,
    std::span<const std::uint32_t> future_cones, LocalLossCache& cache,
    Rng& rng, const BiasedWalkConfig& config);

/// Same walk over a shared cone cache entry (see tangle/view_cache.hpp);
/// consumes the RNG identically to the direct overload. The view is still
/// needed for loss lookups, which are keyed by transaction payload.
tangle::TxIndex biased_random_walk_tip(const tangle::TangleView& view,
                                       const tangle::ViewCacheEntry& cones,
                                       LocalLossCache& cache, Rng& rng,
                                       const BiasedWalkConfig& config);

/// Runs `count` biased walks sharing one loss cache.
std::vector<tangle::TxIndex> biased_select_tips(
    const tangle::TangleView& view, std::size_t count, LocalLossCache& cache,
    Rng& rng, const BiasedWalkConfig& config);

/// Same, over a shared cone cache entry (no per-call cone recompute).
std::vector<tangle::TxIndex> biased_select_tips(
    const tangle::TangleView& view, const tangle::ViewCacheEntry& cones,
    std::size_t count, LocalLossCache& cache, Rng& rng,
    const BiasedWalkConfig& config);

}  // namespace tanglefl::core
