#include "core/gossip_simulation.hpp"

#include <algorithm>
#include <cassert>

#include "core/rng_streams.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace tanglefl::core {
namespace {

obs::Counter& gossip_pull_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("gossip.pulls");
  return counter;
}

obs::Counter& gossip_failed_pull_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("gossip.failed_pulls");
  return counter;
}

obs::Counter& gossip_published_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("gossip.published");
  return counter;
}

obs::Counter& gossip_suppressed_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("gossip.suppressed");
  return counter;
}

obs::Gauge& gossip_ledger_bytes_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("sim.ledger_bytes");
  return gauge;
}

obs::Gauge& gossip_coverage_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("gossip.coverage");
  return gauge;
}

nn::ParamVector make_genesis_params(const nn::ModelFactory& factory,
                                    Rng rng) {
  nn::Model model = factory();
  model.init(rng);
  return model.get_parameters();
}

EvalEngineConfig eval_engine_config(bool use_cache, bool use_batched) {
  EvalEngineConfig config;
  config.use_cache = use_cache;
  config.use_batched = use_batched;
  return config;
}

}  // namespace

GossipSimulation::GossipSimulation(const data::FederatedDataset& dataset,
                                   nn::ModelFactory factory,
                                   GossipConfig config)
    : dataset_(&dataset),
      factory_(std::move(factory)),
      config_(config),
      master_rng_(config.seed),
      store_(),
      tangle_([&] {
        // Chunking must be configured before the first payload lands.
        if (config.codec.chunk) {
          store_.configure_chunking(tangle::ChunkParams{});
        }
        const auto added = store_.add(make_genesis_params(
            factory_, master_rng_.split(streams::kGenesis)));
        return tangle::Tangle(added.id, added.hash);
      }()),
      eval_engine_(factory_,
                   eval_engine_config(config.use_eval_cache,
                                      config.use_eval_batch)),
      pruner_(config.prune) {
  if (config_.timeline != nullptr) {
    health_ = std::make_unique<tangle::HealthTracker>(config_.health);
    timeline_sampler_ = std::make_unique<obs::RegistrySampler>();
  }
  const std::size_t num_users = dataset_->num_users();
  assert(num_users >= 2);

  // Random pull topology: each node pulls from `peers_per_node` distinct
  // other nodes. (Directed; the union in/out degree keeps the graph
  // connected with high probability for fanout >= 2.)
  Rng topology_rng = master_rng_.split(streams::kTopology);
  peers_.resize(num_users);
  const std::size_t fanout =
      std::min(config_.peers_per_node, num_users - 1);
  for (std::size_t u = 0; u < num_users; ++u) {
    Rng node_rng = topology_rng.split(u + 1);
    const auto sample =
        node_rng.sample_without_replacement(num_users - 1, fanout);
    for (const std::size_t s : sample) {
      // Map [0, num_users-1) onto peers != u.
      peers_[u].push_back(s < u ? s : s + 1);
    }
  }

  // Every replica starts with the genesis only.
  known_.assign(num_users, std::vector<bool>(1, true));
}

tangle::TangleView GossipSimulation::replica_view(std::size_t node) const {
  return tangle::TangleView(tangle_, known_.at(node));
}

double GossipSimulation::mean_coverage() const {
  const auto total = static_cast<double>(tangle_.size());
  double acc = 0.0;
  for (const auto& known : known_) {
    acc += static_cast<double>(std::count(known.begin(), known.end(), true)) /
           total;
  }
  return acc / static_cast<double>(known_.size());
}

void GossipSimulation::pull(std::size_t from, std::size_t to) {
  // Anti-entropy: `to` learns the oldest `max_transfer` transactions that
  // `from` knows and `to` does not. Oldest-first transfer preserves
  // ancestor closure because parents always precede children.
  auto& mine = known_[to];
  const auto& theirs = known_[from];
  mine.resize(tangle_.size(), false);
  std::size_t transferred = 0;
  const std::size_t limit =
      config_.max_transfer == 0 ? tangle_.size() : config_.max_transfer;
  for (tangle::TxIndex i = 0; i < theirs.size(); ++i) {
    if (!theirs[i] || mine[i]) continue;
    mine[i] = true;
    if (++transferred >= limit) break;
  }
}

std::size_t GossipSimulation::run_round(std::uint64_t round) {
  obs::TraceScope span("sim.round");
  assert(round >= 1);
  const std::size_t num_users = dataset_->num_users();

  // --- gossip phase -------------------------------------------------
  Rng pull_rng = master_rng_.split(streams::kPull).split(round);
  for (std::size_t exchange = 0; exchange < config_.gossip_exchanges;
       ++exchange) {
    for (std::size_t u = 0; u < num_users; ++u) {
      for (const std::size_t peer : peers_[u]) {
        if (pull_rng.bernoulli(config_.pull_failure)) {
          ++stats_.failed_pulls;
          gossip_failed_pull_counter().increment();
          continue;
        }
        pull(peer, u);
        ++stats_.pulls;
        gossip_pull_counter().increment();
      }
    }
  }

  // --- training phase ------------------------------------------------
  const std::size_t participants =
      std::min(config_.nodes_per_round, num_users);
  Rng selection_rng = master_rng_.split(streams::kParticipant).split(round);
  const std::vector<std::size_t> chosen =
      selection_rng.sample_without_replacement(num_users, participants);

  std::size_t published = 0;
  for (const std::size_t user_index : chosen) {
    const tangle::TangleView view = replica_view(user_index);
    // Participants whose replicas converged to the same membership share
    // one cone computation through the keyed cache.
    const std::shared_ptr<const tangle::ViewCacheEntry> cones =
        config_.use_view_cache ? view_cache_.get(view) : nullptr;
    NodeContext context{view, store_, factory_, round,
                        master_rng_.split(streams::kNode)
                            .split(round)
                            .split(user_index + 1),
                        cones, nullptr, &eval_engine_};
    HonestNode node(config_.node);
    auto publish = node.step(context, dataset_->user(user_index));
    if (!publish) {
      ++stats_.suppressed;
      gossip_suppressed_counter().increment();
      continue;
    }
    const auto added = store_.add(payload_pipeline_.process(
        std::move(publish->params), publish->parents, tangle_, store_));
    const tangle::TxIndex index = tangle_.add_transaction(
        publish->parents, added.id, added.hash, round,
        dataset_->user(user_index).user_id);
    // Initially only the publisher knows its own transaction.
    for (auto& known : known_) known.resize(tangle_.size(), false);
    known_[user_index][index] = true;
    ++published;
    ++stats_.published;
    gossip_published_counter().increment();
  }

  // Milestone pruning under partial views: the milestone must sit in the
  // past cone of EVERY replica's tips, so the required set is the union of
  // all replica tip sets. Any replica still stuck at the genesis keeps the
  // frontier where it is until gossip catches it up.
  if (config_.prune.enabled && config_.use_view_cache && pruner_.tick()) {
    std::vector<tangle::TxIndex> required_tips;
    for (std::size_t u = 0; u < num_users; ++u) {
      const std::vector<tangle::TxIndex> tips = replica_view(u).tips();
      required_tips.insert(required_tips.end(), tips.begin(), tips.end());
    }
    std::sort(required_tips.begin(), required_tips.end());
    required_tips.erase(
        std::unique(required_tips.begin(), required_tips.end()),
        required_tips.end());
    pruner_.advance(tangle_, store_, *view_cache_.get(tangle_.view()),
                    required_tips);
  }

  gossip_ledger_bytes_gauge().set(static_cast<double>(store_.live_bytes()));
  if (config_.timeline != nullptr) {
    // Health over the global ledger (union of replicas): the true DAG.
    gossip_coverage_gauge().set(mean_coverage());
    const tangle::TangleView view = tangle_.view();
    const std::shared_ptr<const tangle::ViewCacheEntry> cones =
        config_.use_view_cache ? view_cache_.get(view) : nullptr;
    Rng health_rng = master_rng_.split(streams::kHealth).split(round);
    health_->sample(view, cones.get(), round, health_rng);
    timeline_sampler_->sample(*config_.timeline, round);
  }
  return published;
}

RoundRecord GossipSimulation::evaluate(std::uint64_t round) {
  obs::TraceScope span("sim.evaluate");
  RoundRecord record;
  record.round = round;
  record.tangle_size = tangle_.size();
  record.tip_count =
      config_.use_view_cache
          ? view_cache_.get(tangle_.view())->tips().size()
          : tangle_.view().tips().size();
  record.publish_rate = mean_coverage();  // repurposed: replica coverage
  record.published_cumulative = stats_.published;
  record.suppressed_cumulative = stats_.suppressed;
  record.ledger_bytes = store_.live_bytes();
  gossip_ledger_bytes_gauge().set(static_cast<double>(record.ledger_bytes));

  const std::size_t num_users = dataset_->num_users();
  Rng eval_rng = master_rng_.split(streams::kEval).split(round);

  // A participant's perspective: consensus from one random replica.
  const std::size_t observer = eval_rng.uniform_index(num_users);
  const tangle::TangleView view = replica_view(observer);
  Rng reference_rng = eval_rng.split(1);
  const ReferenceResult reference =
      config_.use_view_cache
          ? choose_reference(view, store_, *view_cache_.get(view),
                             reference_rng, config_.node.reference)
          : choose_reference(view, store_, reference_rng,
                             config_.node.reference);

  const auto eval_users = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.eval_nodes_fraction *
                                  static_cast<double>(num_users) +
                                  0.5));
  const std::vector<std::size_t> users =
      eval_rng.sample_without_replacement(num_users, eval_users);
  const data::DataSplit pooled = dataset_->pooled_test(users);
  if (pooled.empty()) return record;

  // Only loss/accuracy are reported, so one cached batched probe
  // (reference payload list × pooled-split identity) covers the whole eval.
  const std::shared_ptr<const BatchedSplit> prepared =
      eval_engine_.prepare(pooled);
  const EvalRequest request{reference.params, ParamsKey{reference.payloads}};
  const data::EvalResult eval =
      eval_engine_
          .evaluate_many(std::span<const EvalRequest>(&request, 1), *prepared)
          .front()
          .result;
  record.accuracy = eval.accuracy;
  record.loss = eval.loss;
  return record;
}

RunResult GossipSimulation::run() {
  RunResult result;
  result.label = "tangle-gossip";
  for (std::uint64_t round = 1; round <= config_.rounds; ++round) {
    const std::size_t published = run_round(round);
    if (round % config_.eval_every == 0 || round == config_.rounds) {
      const RoundRecord record = evaluate(round);
      result.history.push_back(record);
      log_info() << "gossip round " << round << ": acc=" << record.accuracy
                 << " coverage=" << record.publish_rate
                 << " tx=" << record.tangle_size
                 << " published=" << published;
    }
  }
  stats_.final_mean_coverage = mean_coverage();
  return result;
}

RunResult run_gossip_tangle_learning(const data::FederatedDataset& dataset,
                                     nn::ModelFactory factory,
                                     const GossipConfig& config,
                                     std::string label) {
  if (config.timeline != nullptr) config.timeline->begin_run(label);
  GossipSimulation simulation(dataset, std::move(factory), config);
  RunResult result = simulation.run();
  result.label = std::move(label);
  return result;
}

}  // namespace tanglefl::core
