// Shared evaluation engine: every loss probe of Algorithm 2 and the
// Section III-E defence goes through here instead of building a throwaway
// nn::Model and re-gathering minibatches per probe.
//
// Three mechanisms, all bit-transparent (a probe's result is exactly what
// the direct `factory() + set_parameters + data::evaluate` path produces):
//
//   * payload-result cache — a concurrent, sharded map from
//     (parameter identity, split identity) to the full EvalResult. The
//     parameter identity is the ordered list of ModelStore payload ids the
//     parameters average (a single id for a tip payload; the top-n list
//     for a reference model) — exact, because the store content-
//     deduplicates payloads. The split identity is a 128-bit content hash
//     of the validation data. Payloads and user splits are immutable, so a
//     cached loss is bit-exact forever: it survives across rounds and is
//     shared by every participant evaluating the same model on the same
//     split.
//   * model-instance pool — probes lease a reusable nn::Model and
//     set_parameters into it instead of running the factory per probe, so
//     layer allocations, packs, and workspaces amortize across the run.
//   * pre-batched validation — a split is gathered into forward-ready
//     batch tensors once (BatchedSplit) and reused by every probe against
//     it, killing the per-eval DataSplit::gather copies.
//
// Why caching is bit-safe: evaluation runs forward passes only
// (training=false; Dropout is identity, no layer keeps running statistics),
// so an EvalResult is a pure function of (parameters, split contents,
// batch size). The batch size is pinned to data::evaluate's default, hence
// the cached and uncached paths share batch boundaries bit-exactly.
//
// Concurrency: all members are internally locked; node steps running under
// ThreadPool::parallel_for may probe concurrently. Distinct users carry
// distinct validation splits, so concurrent probes virtually never share a
// cache key and the hit/miss counter sequences stay deterministic for a
// given (seed, config).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "data/training.hpp"
#include "nn/model.hpp"
#include "support/sync.hpp"
#include "tangle/model_store.hpp"

namespace tanglefl {
class ThreadPool;
}

namespace tanglefl::core {

class EvalBackend;
class EvalEngine;

struct EvalEngineConfig {
  // Master switch for the (params, split) result cache and the cross-call
  // BatchedSplit reuse. Off still pools model instances and pre-batches
  // once per probe site — outputs are byte-identical either way.
  bool use_cache = true;
  // Routes evaluate_many() groups through the backend's fused multi-model
  // pass (shared input packs + grid parallelism). Off replays the exact
  // per-item serial path; results are byte-identical either way.
  bool use_batched = true;
  // Evaluation minibatch size. Must equal data::kEvalBatchSize so cached
  // and direct paths accumulate losses over identical batches; the engine
  // constructor rejects any other value.
  std::size_t batch_size = data::kEvalBatchSize;
  // LRU byte budget for retained BatchedSplits (user validation splits are
  // small and stay resident; large one-shot pooled-test splits rotate out).
  std::size_t batched_budget_bytes = 256ull << 20;
  // Optional backend override. When set, the engine runs every forward
  // evaluation through the returned backend instead of the default pooled
  // nn::Model path; the EvalEngine reference stays valid for the backend's
  // lifetime. Null selects the built-in model backend.
  std::function<std::unique_ptr<EvalBackend>(EvalEngine&)> backend_factory;
};

/// 128-bit content identity of a DataSplit (feature bytes + labels).
struct SplitKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t samples = 0;

  friend bool operator==(const SplitKey&, const SplitKey&) = default;
};

/// A validation split gathered into contiguous, forward-ready batches once.
/// Immutable; shared across probes (and rounds) via shared_ptr.
class BatchedSplit {
 public:
  BatchedSplit(const data::DataSplit& split, std::size_t batch_size,
               SplitKey key);

  const SplitKey& key() const noexcept { return key_; }
  std::size_t samples() const noexcept { return samples_; }
  std::size_t batch_count() const noexcept { return features_.size(); }
  const nn::Tensor& features(std::size_t batch) const {
    return features_[batch];
  }
  std::span<const std::int32_t> labels(std::size_t batch) const {
    return labels_[batch];
  }
  /// Approximate retained bytes (for the engine's LRU budget).
  std::size_t bytes() const noexcept { return bytes_; }

 private:
  SplitKey key_;
  std::size_t samples_ = 0;
  std::size_t bytes_ = 0;
  std::vector<nn::Tensor> features_;
  std::vector<std::vector<std::int32_t>> labels_;
};

/// Identity of a parameter vector as the ordered ModelStore payload list it
/// averages. Exact: payload ids are content-deduplicated by the store, and
/// nn::average_params is a pure function of the ordered list. The payload
/// hash is computed once at construction so hot probe loops don't re-hash
/// the id list on every shard lookup.
class ParamsKey {
 public:
  ParamsKey();
  // Intentionally implicit: probe sites build keys as ParamsKey{ids}.
  ParamsKey(std::vector<tangle::PayloadId> payloads);  // NOLINT

  static ParamsKey single(tangle::PayloadId id) {
    return ParamsKey(std::vector<tangle::PayloadId>{id});
  }

  const std::vector<tangle::PayloadId>& payloads() const noexcept {
    return payloads_;
  }
  std::uint64_t hash() const noexcept { return hash_; }

  friend bool operator==(const ParamsKey& a, const ParamsKey& b) {
    return a.payloads_ == b.payloads_;
  }

 private:
  std::vector<tangle::PayloadId> payloads_;
  std::uint64_t hash_ = 0;
};

struct EvalOutcome {
  data::EvalResult result;
  bool cache_hit = false;
};

/// One probe in an evaluate_many group. A keyed request participates in the
/// result cache exactly like payload_eval/params_eval; a keyless request
/// (freshly trained weights with no payload identity) is always evaluated
/// and never cached, matching evaluate(). `params` must stay valid for the
/// duration of the call.
struct EvalRequest {
  std::span<const float> params;
  std::optional<ParamsKey> key;
};

/// Pluggable forward-evaluation runtime. Every cache miss the engine takes
/// runs through one of these; the default backend leases pooled nn::Model
/// instances and runs the ops kernels. An alternative runtime (quantized
/// weights, an external interpreter) implements the same flat-span contract
/// and slots in via EvalEngineConfig::backend_factory without touching any
/// probe site.
class EvalBackend {
 public:
  virtual ~EvalBackend() = default;

  /// Forward-evaluates one parameter vector over the prepared batches.
  /// Must be a pure function of (params, batched) — results are cached.
  virtual data::EvalResult eval(std::span<const float> params,
                                const BatchedSplit& batched,
                                ThreadPool* pool) = 0;

  /// Evaluates k parameter vectors; results[i] corresponds to params[i] and
  /// must be bit-identical to eval(params[i], batched, ...). The base
  /// implementation loops eval(); backends may fuse shared work.
  virtual void eval_many(std::span<const std::span<const float>> params,
                         const BatchedSplit& batched,
                         std::span<data::EvalResult> results,
                         ThreadPool* pool);
};

class EvalEngine {
 public:
  explicit EvalEngine(nn::ModelFactory factory, EvalEngineConfig config = {});

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  /// RAII lease of a pooled model instance; returns it on destruction.
  class ModelLease {
   public:
    ModelLease(ModelLease&& other) noexcept
        : engine_(other.engine_), model_(std::move(other.model_)) {
      other.engine_ = nullptr;
    }
    ModelLease& operator=(ModelLease&&) = delete;
    ~ModelLease();

    nn::Model& model() noexcept { return *model_; }

   private:
    friend class EvalEngine;
    ModelLease(EvalEngine* engine, std::unique_ptr<nn::Model> model)
        : engine_(engine), model_(std::move(model)) {}

    EvalEngine* engine_;
    std::unique_ptr<nn::Model> model_;
  };

  /// Leases a model from the pool (constructing one only when the pool is
  /// dry). The instance's parameters are unspecified — set_parameters
  /// before use.
  ModelLease acquire();

  /// Gathers `split` into batch tensors, reusing a cached gather when the
  /// same contents were prepared before (keyed by content, so it is safe
  /// to pass temporaries). `split` must be non-empty.
  std::shared_ptr<const BatchedSplit> prepare(const data::DataSplit& split);

  /// Forward-evaluates `model` over the prepared batches. Bit-identical to
  /// data::evaluate(model, split) on the split `batched` was built from.
  /// Uncached — for freshly trained parameters with no payload identity.
  data::EvalResult evaluate(nn::Model& model, const BatchedSplit& batched);

  /// Cached evaluation for a model whose parameters have identity `key`
  /// (the caller already set them on `model`). On a hit the forward passes
  /// are skipped entirely.
  EvalOutcome evaluate_cached(const ParamsKey& key, nn::Model& model,
                              const BatchedSplit& batched);

  /// Cached evaluation of one store payload on `batched`.
  EvalOutcome payload_eval(const tangle::ModelStore& store,
                           tangle::PayloadId payload,
                           const BatchedSplit& batched);

  /// Cached evaluation of `params` whose identity is `key` (e.g. a
  /// reference model averaging the payloads named by the key).
  EvalOutcome params_eval(const ParamsKey& key, std::span<const float> params,
                          const BatchedSplit& batched);

  /// Batched evaluation of a probe group: cache hits are resolved up front
  /// (first occurrence of a duplicated key counts as the miss, later ones
  /// as hits, mirroring the serial probe order) and only the misses enter
  /// the backend's fused pass, whose k×batches work grid runs on `pool`.
  /// outcomes[i] is bit-identical to probing requests[i] alone, including
  /// the hit/miss flags and counter totals. With config.use_batched off the
  /// group degenerates to the exact per-item serial path.
  std::vector<EvalOutcome> evaluate_many(std::span<const EvalRequest> requests,
                                         const BatchedSplit& batched,
                                         ThreadPool* pool = nullptr);

  /// evaluate_many over store payloads: requests[i] = (store.get(ids[i]),
  /// ParamsKey::single(ids[i])).
  std::vector<EvalOutcome> payloads_eval_many(
      const tangle::ModelStore& store,
      std::span<const tangle::PayloadId> payloads, const BatchedSplit& batched,
      ThreadPool* pool = nullptr);

  bool cache_enabled() const noexcept { return config_.use_cache; }
  const EvalEngineConfig& config() const noexcept { return config_; }

  /// Diagnostics (exact; used by tests).
  std::size_t models_created() const;
  std::size_t pool_size() const;
  std::size_t cached_results() const;
  std::size_t cached_splits() const;

 private:
  struct ResultKey {
    ParamsKey params;
    SplitKey split;

    friend bool operator==(const ResultKey&, const ResultKey&) = default;
  };
  struct ResultKeyHash {
    std::size_t operator()(const ResultKey& key) const noexcept;
  };
  struct Shard {
    mutable SharedMutex mutex;
    std::unordered_map<ResultKey, data::EvalResult, ResultKeyHash> results
        TANGLEFL_GUARDED_BY(mutex);
  };
  struct SplitSlot {
    std::shared_ptr<const BatchedSplit> batched;
    std::uint64_t last_used = 0;
  };

  static constexpr std::size_t kShards = 16;

  Shard& shard_for(const ResultKey& key) const;
  bool lookup(const ResultKey& key, data::EvalResult& out) const;
  void insert(const ResultKey& key, const data::EvalResult& result);
  void release(std::unique_ptr<nn::Model> model);
  /// Linear scan of the resident splits for `key`; bumps the LRU tick and
  /// reuse counter on a find. Caller must hold split_mutex_.
  std::shared_ptr<const BatchedSplit> find_split(const SplitKey& key)
      TANGLEFL_REQUIRES(split_mutex_);

  // lint:allow(unannotated-guard) immutable after construction
  nn::ModelFactory factory_;
  // lint:allow(unannotated-guard) immutable after construction
  EvalEngineConfig config_;
  // lint:allow(unannotated-guard) immutable after construction; the backend
  // is internally thread-safe (it only uses the engine's locked pool).
  std::unique_ptr<EvalBackend> backend_;

  mutable Mutex pool_mutex_;
  std::vector<std::unique_ptr<nn::Model>> pool_
      TANGLEFL_GUARDED_BY(pool_mutex_);
  std::size_t models_created_ TANGLEFL_GUARDED_BY(pool_mutex_) = 0;

  mutable Mutex split_mutex_;
  std::vector<SplitSlot> splits_
      TANGLEFL_GUARDED_BY(split_mutex_);  // LRU by linear scan
  std::size_t split_bytes_ TANGLEFL_GUARDED_BY(split_mutex_) = 0;
  std::uint64_t split_tick_ TANGLEFL_GUARDED_BY(split_mutex_) = 0;

  // lint:allow(unannotated-guard) fixed array allocated in the ctor; each
  // Shard carries its own lock for its contents.
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace tanglefl::core
