// Participating-node behaviours. HonestNode implements Algorithm 2 (basic
// model training and parameter validation) together with the robust tip
// selection extension of Section III-E; the malicious behaviours implement
// the two poisoning attacks evaluated in Section V-B.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/reference.hpp"
#include "data/dataset.hpp"
#include "data/training.hpp"
#include "nn/model.hpp"
#include "nn/privacy.hpp"
#include "support/rng.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"
#include "tangle/tip_selection.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::core {

class BatchedSplit;
class EvalEngine;

/// Per-node algorithm parameters (the hyperparameters of Table II plus the
/// training configuration of Table I).
struct NodeConfig {
  // Number of tips whose models are averaged and approved ("# tips (n)").
  std::size_t num_tips = 2;
  // Number of candidate tips drawn by repeated tip selection ("sample
  // size"). Values above num_tips enable the Section III-E defence: each
  // candidate is validated on local data and only the best num_tips are
  // used. Clamped up to num_tips.
  std::size_t tip_sample_size = 2;
  ReferenceConfig reference;
  tangle::TipSelectionConfig tip_selection;
  data::TrainConfig training;

  // Section VI outlook: bias the random walk by local model performance
  // (see core/biased_walk.hpp). When enabled, walk transitions multiply in
  // exp(-walk_loss_beta * local_loss), steering nodes with similar data
  // toward shared sub-tangles.
  bool use_biased_walk = false;
  double walk_loss_beta = 1.0;

  // Section III-D: publish DP-sanitized parameters (Gaussian mechanism on
  // the update relative to the averaged parent base).
  bool use_dp = false;
  nn::DpConfig dp;

  // Section III-C: publish 8-bit-quantized payloads (lossy compression of
  // the full parameter vector on the wire).
  bool quantize_payloads = false;
};

/// What a node wants to publish at the end of its round.
struct PublishRequest {
  std::vector<tangle::TxIndex> parents;  // approved transactions
  nn::ParamVector params;                // new model payload
};

/// Read-only view of the world a node sees during its training round, plus
/// its private random stream.
struct NodeContext {
  const tangle::TangleView& view;
  const tangle::ModelStore& store;
  const nn::ModelFactory& factory;
  std::uint64_t round = 0;
  Rng rng;
  // Shared per-view cone cache entry for `view` (see tangle/view_cache.hpp).
  // Null means the node computes its own cones — results are bit-identical
  // either way; the entry only removes redundant recomputation.
  std::shared_ptr<const tangle::ViewCacheEntry> cones{};
  // Optional intra-node pool for local-training kernels. Row-partitioned,
  // so the published parameters are bit-identical for any pool size. Not
  // owned; null trains serially.
  ThreadPool* kernel_pool = nullptr;
  // Shared evaluation engine (core/eval_engine.hpp). Null routes every loss
  // probe through the legacy factory()-per-probe path; results are
  // bit-identical either way. Not owned; must outlive the step.
  EvalEngine* eval = nullptr;
};

class NodeBehavior {
 public:
  virtual ~NodeBehavior() = default;

  /// One training-round step. Returns the transaction to publish, or
  /// nullopt when the node abstains (e.g. no improvement over the
  /// reference model).
  virtual std::optional<PublishRequest> step(NodeContext& context,
                                             const data::UserData& user) = 0;

  virtual bool is_malicious() const noexcept { return false; }
};

/// Algorithm 2 with the Section III-E robust tip selection.
class HonestNode final : public NodeBehavior {
 public:
  explicit HonestNode(NodeConfig config) : config_(std::move(config)) {}

  std::optional<PublishRequest> step(NodeContext& context,
                                     const data::UserData& user) override;

  /// Picks the tips to average: draws `tip_sample_size` candidates by
  /// random walk; if more candidates than `num_tips` are drawn, keeps the
  /// `num_tips` whose payloads score the lowest loss on `validation`.
  /// Exposed for unit tests.
  std::vector<tangle::TxIndex> choose_parents(NodeContext& context,
                                              const data::DataSplit& validation);

 private:
  /// Same, probing candidate losses through `prepared` (the engine-batched
  /// form of `validation`) when the context carries an eval engine.
  std::vector<tangle::TxIndex> choose_parents(
      NodeContext& context, const data::DataSplit& validation,
      const std::shared_ptr<const BatchedSplit>& prepared);

  NodeConfig config_;
};

/// Indiscriminate attack (Fig. 5): publishes parameters drawn from a
/// standard normal distribution whenever chosen for a round, attaching to
/// regular random-walk tips so the poison enters the consensus structure.
class RandomPoisonNode final : public NodeBehavior {
 public:
  explicit RandomPoisonNode(NodeConfig config) : config_(std::move(config)) {}

  std::optional<PublishRequest> step(NodeContext& context,
                                     const data::UserData& user) override;

  bool is_malicious() const noexcept override { return true; }

 private:
  NodeConfig config_;
};

/// Targeted label-flipping attack (Fig. 6): behaves exactly like an honest
/// node, but its local dataset consists solely of source-class samples
/// labeled as the target class, so its "improvements" push the model
/// toward the targeted misclassification. The poisoned dataset is prepared
/// by the simulation; this behaviour simply runs Algorithm 2 on it and
/// skips the publish gate when its own (poisoned) validation set is empty.
class LabelFlipNode final : public NodeBehavior {
 public:
  explicit LabelFlipNode(NodeConfig config)
      : honest_(std::move(config)) {}

  std::optional<PublishRequest> step(NodeContext& context,
                                     const data::UserData& poisoned_user) override;

  bool is_malicious() const noexcept override { return true; }

 private:
  HonestNode honest_;
};

/// Backdoor (model replacement) attack — the "different classes of
/// poisoning attacks" the paper's Section VI calls for, after Bagdasaryan
/// et al. [29]: the attacker trains on a mix of clean and trigger-stamped
/// samples (stealth: clean accuracy is preserved), then *boosts* its
/// update by a scale factor so the backdoor survives averaging, and
/// publishes unconditionally.
class BackdoorNode final : public NodeBehavior {
 public:
  BackdoorNode(NodeConfig config, data::BackdoorTrigger trigger,
               double boost = 3.0, double poison_fraction = 0.5)
      : config_(std::move(config)),
        trigger_(trigger),
        boost_(boost),
        poison_fraction_(poison_fraction) {}

  std::optional<PublishRequest> step(NodeContext& context,
                                     const data::UserData& user) override;

  bool is_malicious() const noexcept override { return true; }

 private:
  NodeConfig config_;
  data::BackdoorTrigger trigger_;
  double boost_;
  double poison_fraction_;
};

}  // namespace tanglefl::core
