// Gossip-replicated simulation — the distributed-implementation outlook of
// Section VI taken one step further than the asynchronous engine: every
// node maintains its own partial replica of the ledger and learns about
// new transactions only through anti-entropy gossip with a bounded set of
// peers. Training decisions therefore run on genuinely divergent views.
//
// Mechanics per round:
//   1. gossip phase — `gossip_exchanges` rounds of pull-based anti-entropy
//      over a random k-regular-ish peer graph; a pull transfers at most
//      `max_transfer` transactions (oldest first, which keeps every
//      replica ancestor-closed: the solidification rule),
//   2. training phase — a sampled subset of nodes runs Algorithm 2 on its
//      *own replica view*; publishes land in the global ledger and are
//      initially known only to their publisher.
//
// The engine reports replica coverage (how much of the ledger the average
// node knows) next to the usual learning metrics, quantifying how much
// consensus quality degrades under partial views.
#pragma once

#include <memory>
#include <vector>

#include "core/eval_engine.hpp"
#include "core/metrics.hpp"
#include "core/node.hpp"
#include "data/poison.hpp"
#include "obs/timeline.hpp"
#include "tangle/health.hpp"
#include "tangle/milestones.hpp"
#include "tangle/payload_codec.hpp"

namespace tanglefl::core {

struct GossipConfig {
  std::size_t rounds = 40;
  std::size_t nodes_per_round = 10;

  std::size_t peers_per_node = 3;      // gossip fanout (random digraph)
  std::size_t gossip_exchanges = 2;    // anti-entropy pulls per round
  std::size_t max_transfer = 64;       // transactions per pull (0 = all)
  double pull_failure = 0.0;           // probability a pull silently fails

  NodeConfig node;

  std::size_t eval_every = 5;
  double eval_nodes_fraction = 0.1;

  std::uint64_t seed = 1;

  // Share cone computations across participants whose replicas converged
  // to the same membership (keyed by membership hash — see
  // tangle/view_cache.hpp). Bit-identical results either way.
  bool use_view_cache = true;

  // Cache loss-probe results across probes and rounds in the shared eval
  // engine; byte-identical outputs either way (core/eval_engine.hpp).
  bool use_eval_cache = true;
  // Batched multi-model candidate probes (EvalEngineConfig::use_batched):
  // off replays the exact per-probe serial path. Outputs are byte-identical
  // either way.
  bool use_eval_batch = true;

  // Publish-path payload codec (tangle/payload_codec.hpp); all stages
  // default off, keeping outputs byte-identical to prior versions.
  tangle::PayloadCodecConfig codec;

  // Milestone pruning. The milestone must be covered by the union of all
  // replica tip sets, so a replica lagging at the genesis blocks any
  // advance until gossip catches it up; once the frontier moves, it is an
  // ancestor of every replica (replicas are ancestor-closed), so masked
  // walks rooted at it stay valid. Requires use_view_cache; disabled (the
  // default), outputs are byte-identical to prior versions.
  tangle::MilestoneConfig prune;

  // Optional per-round time-series sink (see obs/timeline.hpp). Health is
  // probed over the full global ledger — the union of all replicas — so
  // orphan/tip series describe the true DAG, not one partial view.
  obs::Timeline* timeline = nullptr;
  tangle::HealthConfig health;
};

struct GossipStats {
  std::size_t published = 0;
  std::size_t failed_pulls = 0;
  double final_mean_coverage = 0.0;  // mean fraction of ledger known
  std::size_t suppressed = 0;        // steps that abstained or failed the gate
  std::size_t pulls = 0;             // successful anti-entropy pulls
};

class GossipSimulation {
 public:
  GossipSimulation(const data::FederatedDataset& dataset,
                   nn::ModelFactory factory, GossipConfig config);

  /// Runs all configured rounds.
  RunResult run();

  /// One gossip + training round (1-based).
  std::size_t run_round(std::uint64_t round);

  /// Evaluates the consensus as seen by a randomly chosen node's replica,
  /// on pooled test data — i.e. what a real participant would measure.
  RoundRecord evaluate(std::uint64_t round);

  /// Mean over nodes of |replica| / |ledger|.
  double mean_coverage() const;

  const tangle::Tangle& tangle() const noexcept { return tangle_; }
  const tangle::ModelStore& store() const noexcept { return store_; }
  const GossipStats& stats() const noexcept { return stats_; }
  const std::vector<std::size_t>& peers(std::size_t node) const {
    return peers_.at(node);
  }

  /// The replica view of one node (ancestor-closed by construction).
  tangle::TangleView replica_view(std::size_t node) const;

 private:
  void pull(std::size_t from, std::size_t to);

  const data::FederatedDataset* dataset_;
  nn::ModelFactory factory_;
  GossipConfig config_;
  Rng master_rng_;
  tangle::ModelStore store_;
  tangle::Tangle tangle_;
  GossipStats stats_;

  std::vector<std::vector<std::size_t>> peers_;  // outgoing pull targets
  std::vector<std::vector<bool>> known_;         // per node, by TxIndex
  // Replicas diverge, so keep enough slots for every distinct membership a
  // round's participants may hold (plus the observer's eval view).
  tangle::ViewCache view_cache_{16};
  // Shared loss-probe engine (cache + model pool + pre-batched splits).
  EvalEngine eval_engine_;
  tangle::MilestoneTracker pruner_;
  // Publish-path codec driver; pass-through when no wire stage is on.
  tangle::PayloadPipeline payload_pipeline_{config_.codec};

  // Timeline mode only; null otherwise.
  std::unique_ptr<tangle::HealthTracker> health_;
  std::unique_ptr<obs::RegistrySampler> timeline_sampler_;
};

/// Convenience wrapper mirroring run_tangle_learning.
RunResult run_gossip_tangle_learning(const data::FederatedDataset& dataset,
                                     nn::ModelFactory factory,
                                     const GossipConfig& config,
                                     std::string label = "tangle-gossip");

}  // namespace tanglefl::core
