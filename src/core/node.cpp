#include "core/node.hpp"

#include "core/biased_walk.hpp"
#include "core/eval_engine.hpp"
#include "core/rng_streams.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tanglefl::core {
namespace {

/// Loss of a parameter vector on `split`, via a throwaway model instance.
double params_loss(const nn::ModelFactory& factory,
                   const nn::ParamVector& params,
                   const data::DataSplit& split) {
  nn::Model model = factory();
  model.set_parameters(params);
  return data::evaluate(model, split).loss;
}

// Publish/suppress accounting (Algorithm 2's outcomes) plus the candidate
// statistics from the Section III-E robust selection step. All pure counts
// and value histograms — deterministic for a given seed and config.
obs::Counter& published_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("node.step.published");
  return counter;
}

obs::Counter& suppressed_no_improvement_counter() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "node.step.suppressed.no_improvement");
  return counter;
}

obs::Counter& suppressed_no_data_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("node.step.suppressed.no_data");
  return counter;
}

// Distinct candidates whose loss a node *needed* this step (probed) vs the
// subset that actually cost forward passes (evaluated — an eval-cache miss,
// or every probe on the legacy path). Without the cache the two counters
// are equal; with it, `evaluated` scales with distinct new payloads rather
// than rounds × participants.
obs::Counter& candidate_probe_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("node.candidates.probed");
  return counter;
}

obs::Counter& candidate_eval_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("node.candidates.evaluated");
  return counter;
}

obs::Histogram& candidate_loss_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "node.candidate_loss", obs::BucketLayout::exponential(0.03125, 2.0, 12));
  return hist;
}

// Per-phase wall timing for Algorithm 2; timing-kind, so only populated
// when a harness enables obs timing.
obs::Histogram& reference_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "node.reference_us", obs::BucketLayout::exponential(16.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

obs::Histogram& tip_selection_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "node.tip_selection_us", obs::BucketLayout::exponential(16.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

obs::Histogram& train_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "node.train_us", obs::BucketLayout::exponential(16.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

obs::Histogram& validate_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "node.validate_us", obs::BucketLayout::exponential(16.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

}  // namespace

std::vector<tangle::TxIndex> HonestNode::choose_parents(
    NodeContext& context, const data::DataSplit& validation) {
  std::shared_ptr<const BatchedSplit> prepared;
  if (context.eval != nullptr && !validation.empty()) {
    prepared = context.eval->prepare(validation);
  }
  return choose_parents(context, validation, prepared);
}

std::vector<tangle::TxIndex> HonestNode::choose_parents(
    NodeContext& context, const data::DataSplit& validation,
    const std::shared_ptr<const BatchedSplit>& prepared) {
  const std::size_t num_tips = std::max<std::size_t>(1, config_.num_tips);
  const std::size_t sample_size =
      std::max(num_tips, config_.tip_sample_size);

  Rng walk_rng = context.rng.split(streams::kWalk);
  std::vector<tangle::TxIndex> candidates;
  if (config_.use_biased_walk) {
    LocalLossCache cache =
        context.eval != nullptr
            ? LocalLossCache(*context.eval, context.store, prepared,
                             context.kernel_pool)
            : LocalLossCache(context.store, context.factory, validation);
    const BiasedWalkConfig walk_config{config_.tip_selection.alpha,
                                       config_.walk_loss_beta};
    candidates = context.cones
                     ? biased_select_tips(context.view, *context.cones,
                                          sample_size, cache, walk_rng,
                                          walk_config)
                     : biased_select_tips(context.view, sample_size, cache,
                                          walk_rng, walk_config);
  } else {
    candidates = context.cones
                     ? tangle::select_tips(*context.cones, sample_size,
                                           walk_rng, config_.tip_selection)
                     : tangle::select_tips(context.view, sample_size, walk_rng,
                                           config_.tip_selection);
  }

  if (sample_size == num_tips || validation.empty()) {
    candidates.resize(num_tips);
    return candidates;
  }

  // Section III-E: validate every distinct candidate on local data and
  // average/approve only the best-performing ones.
  std::vector<tangle::TxIndex> distinct = candidates;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  std::vector<std::pair<double, tangle::TxIndex>> scored;
  scored.reserve(distinct.size());
  if (prepared != nullptr) {
    // One batched group scores every distinct candidate: cache hits resolve
    // up front and the misses share input packs in the engine's fused pass.
    std::vector<tangle::PayloadId> payloads;
    payloads.reserve(distinct.size());
    for (const tangle::TxIndex tip : distinct) {
      payloads.push_back(context.view.tangle().transaction(tip).payload);
    }
    const std::vector<EvalOutcome> outcomes = context.eval->payloads_eval_many(
        context.store, payloads, *prepared, context.kernel_pool);
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      candidate_probe_counter().increment();
      if (!outcomes[i].cache_hit) candidate_eval_counter().increment();
      candidate_loss_histogram().record(outcomes[i].result.loss);
      scored.emplace_back(outcomes[i].result.loss, distinct[i]);
    }
  } else {
    for (const tangle::TxIndex tip : distinct) {
      const tangle::PayloadId payload =
          context.view.tangle().transaction(tip).payload;
      candidate_probe_counter().increment();
      const double loss = params_loss(context.factory,
                                      context.store.get(payload), validation);
      candidate_eval_counter().increment();
      candidate_loss_histogram().record(loss);
      scored.emplace_back(loss, tip);
    }
  }
  std::sort(scored.begin(), scored.end());

  std::vector<tangle::TxIndex> parents;
  for (std::size_t i = 0; i < scored.size() && parents.size() < num_tips;
       ++i) {
    parents.push_back(scored[i].second);
  }
  // Fewer distinct candidates than requested tips: repeat the best one, as
  // the tangle allows approving the same transaction twice.
  while (parents.size() < num_tips) parents.push_back(parents.front());
  return parents;
}

std::optional<PublishRequest> HonestNode::step(NodeContext& context,
                                               const data::UserData& user) {
  obs::TraceScope step_span("node.step");
  if (user.train.empty()) {
    suppressed_no_data_counter().increment();
    return std::nullopt;
  }
  // Validate against local test data; fall back to the training split for
  // users without one so tiny users can still participate.
  const data::DataSplit& validation =
      user.test.empty() ? user.train : user.test;
  // Batch the validation split once; every loss probe of this step (walk
  // bias, candidate scoring, publish gate) reuses the gathered tensors.
  std::shared_ptr<const BatchedSplit> prepared;
  if (context.eval != nullptr && !validation.empty()) {
    prepared = context.eval->prepare(validation);
  }

  // w_r <- ChooseReferenceWeights(G)
  Rng reference_rng = context.rng.split(streams::kReference);
  ReferenceResult reference = [&] {
    obs::TraceScope span("node.choose_reference", &reference_timing());
    return context.cones
               ? choose_reference(context.view, context.store, *context.cones,
                                  reference_rng, config_.reference)
               : choose_reference(context.view, context.store, reference_rng,
                                  config_.reference);
  }();

  // (w_1, .., w_n) <- TipSelection(G); w_avg <- mean
  const std::vector<tangle::TxIndex> parents = [&] {
    obs::TraceScope span("node.tip_selection", &tip_selection_timing());
    return choose_parents(context, validation, prepared);
  }();
  std::vector<const nn::ParamVector*> parent_params;
  parent_params.reserve(parents.size());
  for (const tangle::TxIndex p : parents) {
    parent_params.push_back(
        &context.store.get(context.view.tangle().transaction(p).payload));
  }
  const nn::ParamVector averaged = nn::average_params(parent_params);

  // w_new <- Train(w_avg, epochs, lr)
  nn::Model model = context.factory();
  model.set_parameters(averaged);
  Rng train_rng = context.rng.split(streams::kTrain);
  {
    obs::TraceScope span("node.train_local", &train_timing());
    data::TrainConfig training = config_.training;
    training.kernel_pool = context.kernel_pool;
    data::train_local(model, user.train, training, train_rng);
  }

  // Publishing-side transforms: the node validates exactly what it would
  // broadcast, so sanitized/compressed payloads face the same gate.
  nn::ParamVector outgoing = model.get_parameters();
  if (config_.use_dp) {
    Rng dp_rng = context.rng.split(streams::kDp);
    outgoing = nn::dp_sanitize(outgoing, averaged, config_.dp, dp_rng);
  }
  if (config_.quantize_payloads) {
    outgoing = nn::quantize_roundtrip(outgoing);
  }
  if (config_.use_dp || config_.quantize_payloads) {
    model.set_parameters(outgoing);
  }

  // if ValidationLoss(w_new) < ValidationLoss(w_r): Broadcast(w_new)
  obs::TraceScope validate_span("node.validate", &validate_timing());
  double new_loss = 0.0;
  double reference_loss = 0.0;
  if (prepared != nullptr) {
    // One group fuses the publish gate's two forwards. The freshly trained
    // parameters have no payload identity yet — keyless, so uncached
    // (`outgoing` is exactly what the model holds, transformed or not). The
    // reference average is identified by its ordered payload list, so its
    // loss caches across steps and rounds.
    const std::array<EvalRequest, 2> requests{
        EvalRequest{outgoing, std::nullopt},
        EvalRequest{reference.params, ParamsKey{reference.payloads}}};
    const std::vector<EvalOutcome> outcomes =
        context.eval->evaluate_many(requests, *prepared, context.kernel_pool);
    new_loss = outcomes[0].result.loss;
    reference_loss = outcomes[1].result.loss;
  } else {
    new_loss = data::evaluate(model, validation).loss;
    reference_loss = params_loss(context.factory, reference.params, validation);
  }
  if (new_loss >= reference_loss) {
    suppressed_no_improvement_counter().increment();
    return std::nullopt;
  }

  published_counter().increment();
  return PublishRequest{parents, std::move(outgoing)};
}

std::optional<PublishRequest> RandomPoisonNode::step(
    NodeContext& context, const data::UserData& user) {
  (void)user;
  // Attach to tips chosen by the regular walk so the poison is picked up
  // by honest tip selection, then submit N(0,1) parameters.
  Rng walk_rng = context.rng.split(streams::kWalk);
  const std::size_t tips = std::max<std::size_t>(1, config_.num_tips);
  std::vector<tangle::TxIndex> parents =
      context.cones
          ? tangle::select_tips(*context.cones, tips, walk_rng,
                                config_.tip_selection)
          : tangle::select_tips(context.view, tips, walk_rng,
                                config_.tip_selection);

  nn::Model model = context.factory();
  nn::ParamVector params(model.parameter_count());
  Rng noise_rng = context.rng.split(streams::kPoisonNoise);
  for (auto& p : params) p = static_cast<float>(noise_rng.normal());
  return PublishRequest{std::move(parents), std::move(params)};
}

std::optional<PublishRequest> BackdoorNode::step(
    NodeContext& context, const data::UserData& user) {
  if (user.train.empty()) return std::nullopt;

  // Blend in with regular tip selection so the poisoned branch looks like
  // any other.
  Rng walk_rng = context.rng.split(streams::kWalk);
  const std::size_t tips = std::max<std::size_t>(1, config_.num_tips);
  std::vector<tangle::TxIndex> parents =
      context.cones
          ? tangle::select_tips(*context.cones, tips, walk_rng,
                                config_.tip_selection)
          : tangle::select_tips(context.view, tips, walk_rng,
                                config_.tip_selection);
  std::vector<const nn::ParamVector*> parent_params;
  parent_params.reserve(parents.size());
  for (const tangle::TxIndex p : parents) {
    parent_params.push_back(
        &context.store.get(context.view.tangle().transaction(p).payload));
  }
  const nn::ParamVector base = nn::average_params(parent_params);

  // Train on the half-poisoned local dataset.
  Rng poison_rng = context.rng.split(streams::kBackdoorData);
  const data::DataSplit poisoned = data::make_backdoor_train_split(
      user.train, trigger_, poison_fraction_, poison_rng);
  nn::Model model = context.factory();
  model.set_parameters(base);
  Rng train_rng = context.rng.split(streams::kTrain);
  data::TrainConfig training = config_.training;
  training.kernel_pool = context.kernel_pool;
  data::train_local(model, poisoned, training, train_rng);

  // Model replacement: boost the update so it dominates future averages,
  // and publish unconditionally (the attacker ignores the validation gate).
  nn::ParamVector boosted = model.get_parameters();
  for (std::size_t i = 0; i < boosted.size(); ++i) {
    boosted[i] = base[i] + static_cast<float>(boost_) * (boosted[i] - base[i]);
  }
  return PublishRequest{std::move(parents), std::move(boosted)};
}

std::optional<PublishRequest> LabelFlipNode::step(
    NodeContext& context, const data::UserData& poisoned_user) {
  // A flip node whose local data holds no source-class samples has nothing
  // to poison with and abstains.
  if (poisoned_user.train.empty()) return std::nullopt;
  return honest_.step(context, poisoned_user);
}

}  // namespace tanglefl::core
