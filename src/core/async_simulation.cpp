#include "core/async_simulation.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/rng_streams.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"

namespace tanglefl::core {
namespace {

obs::Counter& wakeup_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("async.wakeups");
  return counter;
}

obs::Counter& async_published_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("async.published");
  return counter;
}

obs::Counter& async_lost_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("async.lost");
  return counter;
}

obs::Counter& async_abstained_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("async.abstained");
  return counter;
}

obs::Gauge& async_ledger_bytes_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("sim.ledger_bytes");
  return gauge;
}

nn::ParamVector make_genesis_params(const nn::ModelFactory& factory,
                                    Rng rng) {
  nn::Model model = factory();
  model.init(rng);
  return model.get_parameters();
}

/// Exponential inter-arrival sample.
double exponential(Rng& rng, double rate) {
  double u = 0.0;
  do {
    u = rng.uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

EvalEngineConfig eval_engine_config(bool use_cache, bool use_batched) {
  EvalEngineConfig config;
  config.use_cache = use_cache;
  config.use_batched = use_batched;
  return config;
}

}  // namespace

AsyncTangleSimulation::AsyncTangleSimulation(
    const data::FederatedDataset& dataset, nn::ModelFactory factory,
    AsyncSimulationConfig config)
    : dataset_(&dataset),
      factory_(std::move(factory)),
      config_(config),
      master_rng_(config.seed),
      store_(),
      tangle_([&] {
        // Chunking must be configured before the first payload lands.
        if (config.codec.chunk) {
          store_.configure_chunking(tangle::ChunkParams{});
        }
        const auto added = store_.add(make_genesis_params(
            factory_, master_rng_.split(streams::kGenesis)));
        return tangle::Tangle(added.id, added.hash);
      }()),
      eval_engine_(factory_,
                   eval_engine_config(config.use_eval_cache,
                                      config.use_eval_batch)),
      pruner_(config.prune) {
  if (config_.timeline != nullptr) {
    // Ledger time is microseconds here; the orphan age arrives in seconds.
    config_.health.orphan_age = to_micros(config_.health_orphan_age_seconds);
    health_ = std::make_unique<tangle::HealthTracker>(config_.health);
    timeline_sampler_ = std::make_unique<obs::RegistrySampler>();
  }
  const std::size_t num_users = dataset_->num_users();
  const auto malicious_count = static_cast<std::size_t>(
      config_.malicious_fraction * static_cast<double>(num_users) + 0.5);
  if (malicious_count > 0 && config_.attack != AttackType::kNone) {
    Rng rng = master_rng_.split(streams::kMalicious);
    malicious_users_ =
        rng.sample_without_replacement(num_users, malicious_count);
    std::sort(malicious_users_.begin(), malicious_users_.end());
    if (config_.attack == AttackType::kLabelFlip) {
      poisoned_users_.reserve(malicious_users_.size());
      for (const std::size_t u : malicious_users_) {
        poisoned_users_.push_back(
            data::make_label_flip_user(dataset_->user(u), config_.flip));
      }
    }
  }
}

bool AsyncTangleSimulation::is_malicious(std::size_t user) const noexcept {
  return std::binary_search(malicious_users_.begin(), malicious_users_.end(),
                            user);
}

RoundRecord AsyncTangleSimulation::evaluate(double now) {
  obs::TraceScope span("sim.evaluate");
  RoundRecord record;
  record.round = static_cast<std::uint64_t>(now);
  record.tangle_size = tangle_.size();
  record.tip_count =
      config_.use_view_cache
          ? view_cache_.get(tangle_.view())->tips().size()
          : tangle_.view().tips().size();
  record.published_cumulative = stats_.published;
  record.suppressed_cumulative = stats_.abstained + stats_.lost;
  record.ledger_bytes = store_.live_bytes();
  async_ledger_bytes_gauge().set(static_cast<double>(record.ledger_bytes));

  // Milestone pruning at the evaluation instant. Every later wake trains on
  // at least the prefix that had propagated by now - network_delay (wakes
  // are processed in time order and evals run before the wake they precede),
  // so the frontier is clamped strictly below that visible count and stays
  // inside every future horizon view.
  if (config_.prune.enabled && config_.use_view_cache && pruner_.tick() &&
      now > config_.network_delay_seconds) {
    const std::size_t visible = tangle_.visible_count_for_round(
        to_micros(now - config_.network_delay_seconds) + 1);
    if (visible > 1) {
      const std::shared_ptr<const tangle::ViewCacheEntry> prune_cones =
          view_cache_.get(tangle_.view());
      pruner_.advance(tangle_, store_, *prune_cones, prune_cones->tips(),
                      visible - 1);
    }
  }

  if (config_.timeline != nullptr) {
    const tangle::TangleView full = tangle_.view();
    const std::shared_ptr<const tangle::ViewCacheEntry> cones =
        config_.use_view_cache ? view_cache_.get(full) : nullptr;
    Rng health_rng = master_rng_.split(streams::kHealth).split(to_micros(now));
    health_->sample(full, cones.get(), to_micros(now), health_rng);
    timeline_sampler_->sample(*config_.timeline, record.round);
  }

  const std::size_t num_users = dataset_->num_users();
  const auto eval_users = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.eval_nodes_fraction *
                                  static_cast<double>(num_users) +
                                  0.5));
  Rng eval_rng = master_rng_.split(streams::kEval).split(to_micros(now));
  const std::vector<std::size_t> users =
      eval_rng.sample_without_replacement(num_users, eval_users);
  const data::DataSplit pooled = dataset_->pooled_test(users);
  if (pooled.empty()) return record;

  // kConsensus, not kEval: the reference walks used to share the kEval
  // root with eval-user sampling above (see core/rng_streams.hpp).
  Rng reference_rng =
      master_rng_.split(streams::kConsensus).split(tangle_.size());
  const tangle::TangleView view = tangle_.view();
  const ReferenceResult reference =
      config_.use_view_cache
          ? choose_reference(view, store_, *view_cache_.get(view),
                             reference_rng, config_.node.reference)
          : choose_reference(view, store_, reference_rng,
                             config_.node.reference);
  // Engine-backed consensus eval: pooled model instance, pre-batched
  // split, and a result cached by the reference payload list.
  const std::shared_ptr<const BatchedSplit> prepared =
      eval_engine_.prepare(pooled);
  const EvalRequest request{reference.params, ParamsKey{reference.payloads}};
  const data::EvalResult eval =
      eval_engine_
          .evaluate_many(std::span<const EvalRequest>(&request, 1), *prepared)
          .front()
          .result;
  record.accuracy = eval.accuracy;
  record.loss = eval.loss;
  // The attack metric runs direct forwards over transformed inputs, so it
  // still needs a concrete model instance carrying the reference weights.
  EvalEngine::ModelLease lease = eval_engine_.acquire();
  lease.model().set_parameters(reference.params);
  record.target_misclassification = data::targeted_misclassification_rate(
      lease.model(), pooled, config_.flip.source_class,
      config_.flip.target_class);
  return record;
}

RunResult AsyncTangleSimulation::run() {
  struct WakeEvent {
    double time;
    std::size_t user;
    bool operator>(const WakeEvent& other) const { return time > other.time; }
  };
  struct PendingPublish {
    double time;
    PublishRequest request;
    bool malicious;
    bool operator>(const PendingPublish& other) const {
      return time > other.time;
    }
  };

  std::priority_queue<WakeEvent, std::vector<WakeEvent>, std::greater<>>
      wakes;
  std::priority_queue<PendingPublish, std::vector<PendingPublish>,
                      std::greater<>>
      pending;

  const std::size_t num_users = dataset_->num_users();
  Rng wake_rng = master_rng_.split(streams::kWake);
  for (std::size_t u = 0; u < num_users; ++u) {
    Rng node_wake = wake_rng.split(u + 1);
    wakes.push({exponential(node_wake, config_.wake_rate_per_node), u});
  }
  Rng loss_rng = master_rng_.split(streams::kLoss);

  RunResult result;
  result.label = "tangle-async";
  double next_eval = config_.eval_every_seconds;

  // Flushes landed publishes up to `now`, preserving publish-time order.
  const auto flush_until = [&](double now) {
    while (!pending.empty() && pending.top().time <= now) {
      const PendingPublish& top = pending.top();
      if (loss_rng.bernoulli(config_.publish_loss)) {
        ++stats_.lost;
        async_lost_counter().increment();
      } else {
        const auto added = store_.add(payload_pipeline_.process(
            top.request.params, top.request.parents, tangle_, store_));
        tangle_.add_transaction(top.request.parents, added.id, added.hash,
                                to_micros(top.time),
                                top.malicious ? "malicious" : "async-node");
        ++stats_.published;
        async_published_counter().increment();
      }
      pending.pop();
    }
  };

  while (!wakes.empty() && wakes.top().time <= config_.duration_seconds) {
    const WakeEvent event = wakes.top();
    wakes.pop();

    while (next_eval <= event.time) {
      flush_until(next_eval);
      result.history.push_back(evaluate(next_eval));
      next_eval += config_.eval_every_seconds;
    }
    flush_until(event.time);
    ++stats_.wakeups;
    wakeup_counter().increment();

    // The node sees everything that propagated to it by now.
    const double horizon = event.time - config_.network_delay_seconds;
    const tangle::TangleView view = tangle_.view_prefix(
        horizon <= 0.0 ? 1 : tangle_.visible_count_for_round(
                                 to_micros(horizon) + 1));

    const bool malicious = config_.attack != AttackType::kNone &&
                           event.time >= config_.attack_start_seconds &&
                           is_malicious(event.user);
    // Wakes clustered between publishes see identical prefixes, so the
    // keyed cache turns their cone computations into hits.
    const std::shared_ptr<const tangle::ViewCacheEntry> cones =
        config_.use_view_cache ? view_cache_.get(view) : nullptr;
    NodeContext context{view, store_, factory_, to_micros(event.time),
                        master_rng_.split(streams::kNode)
                            .split(to_micros(event.time))
                            .split(event.user + 1),
                        cones, nullptr, &eval_engine_};

    std::optional<PublishRequest> publish;
    if (!malicious) {
      HonestNode node(config_.node);
      publish = node.step(context, dataset_->user(event.user));
    } else if (config_.attack == AttackType::kRandomPoison) {
      RandomPoisonNode node(config_.node);
      publish = node.step(context, dataset_->user(event.user));
    } else if (config_.attack == AttackType::kLabelFlip) {
      const auto it = std::lower_bound(malicious_users_.begin(),
                                       malicious_users_.end(), event.user);
      LabelFlipNode node(config_.node);
      publish = node.step(context,
                          poisoned_users_[static_cast<std::size_t>(
                              it - malicious_users_.begin())]);
    } else if (config_.attack == AttackType::kBackdoor) {
      BackdoorNode node(config_.node, config_.trigger,
                        config_.backdoor_boost,
                        config_.backdoor_data_fraction);
      publish = node.step(context, dataset_->user(event.user));
    }

    Rng timing_rng = context.rng.split(streams::kTiming);
    if (publish) {
      const double training =
          exponential(timing_rng, 1.0 / config_.mean_training_seconds);
      pending.push({event.time + training, std::move(*publish), malicious});
    } else {
      ++stats_.abstained;
      async_abstained_counter().increment();
    }

    // Schedule this node's next wakeup.
    const double next_wake =
        event.time + exponential(timing_rng, config_.wake_rate_per_node);
    if (next_wake <= config_.duration_seconds) {
      wakes.push({next_wake, event.user});
    }
  }

  // Drain the horizon: remaining publishes plus the final evaluation.
  flush_until(config_.duration_seconds);
  stats_.in_flight = pending.size();
  while (next_eval <= config_.duration_seconds) {
    result.history.push_back(evaluate(next_eval));
    next_eval += config_.eval_every_seconds;
  }
  result.history.push_back(evaluate(config_.duration_seconds));
  return result;
}

RunResult run_async_tangle_learning(const data::FederatedDataset& dataset,
                                    nn::ModelFactory factory,
                                    const AsyncSimulationConfig& config,
                                    std::string label) {
  if (config.timeline != nullptr) config.timeline->begin_run(label);
  AsyncTangleSimulation simulation(dataset, std::move(factory), config);
  RunResult result = simulation.run();
  result.label = std::move(label);
  return result;
}

}  // namespace tanglefl::core
