#include "core/eval_engine.hpp"

#include <cassert>
#include <cstring>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tanglefl::core {
namespace {

obs::Counter& cache_hit_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.cache.hit");
  return counter;
}

obs::Counter& cache_miss_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.cache.miss");
  return counter;
}

obs::Counter& forward_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.forwards");
  return counter;
}

obs::Counter& example_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.examples");
  return counter;
}

obs::Counter& split_reuse_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.split.reused");
  return counter;
}

obs::Counter& split_build_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.split.built");
  return counter;
}

obs::Histogram& eval_us_histogram() {
  static obs::Histogram& histogram = obs::MetricsRegistry::global().histogram(
      "eval.us", obs::BucketLayout::exponential(1.0, 2.0, 24),
      /*timing=*/true);
  return histogram;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t state) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a_reverse(const void* data, std::size_t bytes,
                            std::uint64_t state) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = bytes; i > 0; --i) {
    state ^= p[i - 1];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t mix64(std::uint64_t x) {
  // SplitMix64 finalizer.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// 128-bit content identity of a split: two independent byte passes
/// (forward and reverse order, distinct bases) over features then labels.
/// Used as an exact key; a collision would alias cache entries, so the
/// combined 128 bits + sample count keep that probability negligible.
SplitKey split_key_of(const data::DataSplit& split) {
  const std::span<const float> features = split.features.values();
  const std::size_t feature_bytes = features.size() * sizeof(float);
  const std::size_t label_bytes = split.labels.size() * sizeof(std::int32_t);

  SplitKey key;
  key.samples = split.size();
  key.lo = fnv1a(features.data(), feature_bytes, kFnvBasis);
  key.lo = fnv1a(split.labels.data(), label_bytes, key.lo);
  std::uint64_t hi = fnv1a_reverse(split.labels.data(), label_bytes,
                                   kFnvBasis ^ 0x9e3779b97f4a7c15ull);
  hi = fnv1a_reverse(features.data(), feature_bytes, hi);
  key.hi = mix64(hi);
  return key;
}

}  // namespace

BatchedSplit::BatchedSplit(const data::DataSplit& split,
                           std::size_t batch_size, SplitKey key)
    : key_(key), samples_(split.size()) {
  assert(batch_size > 0);
  features_.reserve((samples_ + batch_size - 1) / batch_size);
  labels_.reserve(features_.capacity());
  // Batch boundaries replicate data::evaluate exactly: [start, start+count)
  // for start = 0, batch_size, 2*batch_size, ...
  for (std::size_t start = 0; start < samples_; start += batch_size) {
    const std::size_t count = std::min(batch_size, samples_ - start);
    data::DataSplit batch = split.slice(start, count);
    bytes_ += batch.features.size() * sizeof(float) +
              batch.labels.size() * sizeof(std::int32_t);
    features_.push_back(std::move(batch.features));
    labels_.push_back(std::move(batch.labels));
  }
}

EvalEngine::EvalEngine(nn::ModelFactory factory, EvalEngineConfig config)
    : factory_(std::move(factory)),
      config_(config),
      shards_(std::make_unique<Shard[]>(kShards)) {
  assert(factory_);
  assert(config_.batch_size > 0);
}

EvalEngine::ModelLease::~ModelLease() {
  if (engine_ != nullptr) engine_->release(std::move(model_));
}

EvalEngine::ModelLease EvalEngine::acquire() {
  std::unique_ptr<nn::Model> model;
  {
    const MutexLock lock(pool_mutex_);
    if (!pool_.empty()) {
      model = std::move(pool_.back());
      pool_.pop_back();
    } else {
      ++models_created_;
    }
  }
  // Factory runs outside the lock; the slot was already accounted for.
  if (model == nullptr) model = std::make_unique<nn::Model>(factory_());
  return ModelLease(this, std::move(model));
}

void EvalEngine::release(std::unique_ptr<nn::Model> model) {
  const MutexLock lock(pool_mutex_);
  pool_.push_back(std::move(model));
}

std::shared_ptr<const BatchedSplit> EvalEngine::find_split(
    const SplitKey& key) {
  for (SplitSlot& slot : splits_) {
    if (slot.batched->key() == key) {
      slot.last_used = ++split_tick_;
      return slot.batched;
    }
  }
  return nullptr;
}

std::shared_ptr<const BatchedSplit> EvalEngine::prepare(
    const data::DataSplit& split) {
  assert(!split.empty());
  const SplitKey key = split_key_of(split);
  if (config_.use_cache) {
    const MutexLock lock(split_mutex_);
    if (auto resident = find_split(key)) {
      split_reuse_counter().increment();
      return resident;
    }
  }
  split_build_counter().increment();
  auto batched =
      std::make_shared<const BatchedSplit>(split, config_.batch_size, key);
  if (!config_.use_cache) return batched;

  // Evicted splits are parked here and freed after the lock releases: a
  // pooled-test split can be tens of MB, and running its destructor under
  // split_mutex_ would block every concurrent probe's prepare().
  std::vector<std::shared_ptr<const BatchedSplit>> evicted;
  {
    const MutexLock lock(split_mutex_);
    // Another thread may have inserted the same contents while we
    // gathered; prefer the resident copy so probes share one instance.
    if (auto resident = find_split(key)) return resident;
    splits_.push_back(SplitSlot{batched, ++split_tick_});
    split_bytes_ += batched->bytes();
    // Evict least-recently-used entries over budget, always keeping the
    // newest (linear scan over a small vector — no unordered iteration).
    while (split_bytes_ > config_.batched_budget_bytes && splits_.size() > 1) {
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < splits_.size(); ++i) {
        if (splits_[i].last_used < splits_[oldest].last_used) oldest = i;
      }
      split_bytes_ -= splits_[oldest].batched->bytes();
      evicted.push_back(std::move(splits_[oldest].batched));
      splits_.erase(splits_.begin() + static_cast<std::ptrdiff_t>(oldest));
    }
  }
  return batched;
}

data::EvalResult EvalEngine::evaluate(nn::Model& model,
                                      const BatchedSplit& batched) {
  obs::TraceScope span("eval.forward", &eval_us_histogram());
  data::EvalResult result;
  if (batched.samples() == 0) return result;

  // Accumulation order matches data::evaluate bit-for-bit: per-batch mean
  // loss scaled by the batch count, summed in double over batches in order.
  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batched.batch_count(); ++b) {
    const nn::Tensor logits =
        model.forward(batched.features(b), /*training=*/false);
    const std::span<const std::int32_t> labels = batched.labels(b);
    loss_sum +=
        static_cast<double>(nn::softmax_cross_entropy_loss(logits, labels)) *
        static_cast<double>(labels.size());
    for (std::size_t row = 0; row < labels.size(); ++row) {
      if (logits.argmax_row(row) == static_cast<std::size_t>(labels[row])) {
        ++correct;
      }
    }
    forward_counter().increment();
    example_counter().add(labels.size());
  }
  result.samples = batched.samples();
  result.loss = loss_sum / static_cast<double>(batched.samples());
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(batched.samples());
  return result;
}

EvalOutcome EvalEngine::evaluate_cached(const ParamsKey& key, nn::Model& model,
                                        const BatchedSplit& batched) {
  const ResultKey result_key{key, batched.key()};
  data::EvalResult cached;
  if (lookup(result_key, cached)) {
    cache_hit_counter().increment();
    return EvalOutcome{cached, true};
  }
  cache_miss_counter().increment();
  const data::EvalResult result = evaluate(model, batched);
  insert(result_key, result);
  return EvalOutcome{result, false};
}

EvalOutcome EvalEngine::payload_eval(const tangle::ModelStore& store,
                                     tangle::PayloadId payload,
                                     const BatchedSplit& batched) {
  const ResultKey result_key{ParamsKey::single(payload), batched.key()};
  data::EvalResult cached;
  if (lookup(result_key, cached)) {
    cache_hit_counter().increment();
    return EvalOutcome{cached, true};
  }
  cache_miss_counter().increment();
  ModelLease lease = acquire();
  lease.model().set_parameters(store.get(payload));
  const data::EvalResult result = evaluate(lease.model(), batched);
  insert(result_key, result);
  return EvalOutcome{result, false};
}

EvalOutcome EvalEngine::params_eval(const ParamsKey& key,
                                    std::span<const float> params,
                                    const BatchedSplit& batched) {
  const ResultKey result_key{key, batched.key()};
  data::EvalResult cached;
  if (lookup(result_key, cached)) {
    cache_hit_counter().increment();
    return EvalOutcome{cached, true};
  }
  cache_miss_counter().increment();
  ModelLease lease = acquire();
  lease.model().set_parameters(params);
  const data::EvalResult result = evaluate(lease.model(), batched);
  insert(result_key, result);
  return EvalOutcome{result, false};
}

std::size_t EvalEngine::ResultKeyHash::operator()(
    const ResultKey& key) const noexcept {
  std::uint64_t state = kFnvBasis;
  state = fnv1a(key.params.payloads.data(),
                key.params.payloads.size() * sizeof(tangle::PayloadId), state);
  state = fnv1a(&key.split, sizeof(SplitKey), state);
  return static_cast<std::size_t>(mix64(state));
}

EvalEngine::Shard& EvalEngine::shard_for(const ResultKey& key) const {
  return shards_[ResultKeyHash{}(key) % kShards];
}

bool EvalEngine::lookup(const ResultKey& key, data::EvalResult& out) const {
  if (!config_.use_cache) return false;
  Shard& shard = shard_for(key);
  const ReaderLock lock(shard.mutex);
  const auto it = shard.results.find(key);
  if (it == shard.results.end()) return false;
  out = it->second;
  return true;
}

void EvalEngine::insert(const ResultKey& key, const data::EvalResult& result) {
  if (!config_.use_cache) return;
  Shard& shard = shard_for(key);
  const WriterLock lock(shard.mutex);
  shard.results.emplace(key, result);
}

std::size_t EvalEngine::models_created() const {
  const MutexLock lock(pool_mutex_);
  return models_created_;
}

std::size_t EvalEngine::pool_size() const {
  const MutexLock lock(pool_mutex_);
  return pool_.size();
}

std::size_t EvalEngine::cached_results() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    const ReaderLock lock(shards_[i].mutex);
    total += shards_[i].results.size();
  }
  return total;
}

std::size_t EvalEngine::cached_splits() const {
  const MutexLock lock(split_mutex_);
  return splits_.size();
}

}  // namespace tanglefl::core
