#include "core/eval_engine.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace tanglefl::core {
namespace {

obs::Counter& cache_hit_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.cache.hit");
  return counter;
}

obs::Counter& cache_miss_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.cache.miss");
  return counter;
}

obs::Counter& forward_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.forwards");
  return counter;
}

obs::Counter& example_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.examples");
  return counter;
}

obs::Counter& batched_group_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.batched.groups");
  return counter;
}

obs::Counter& batched_model_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.batched.models");
  return counter;
}

obs::Counter& pack_reuse_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.batched.pack_reuses");
  return counter;
}

obs::Counter& split_reuse_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.split.reused");
  return counter;
}

obs::Counter& split_build_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("eval.split.built");
  return counter;
}

obs::Histogram& eval_us_histogram() {
  static obs::Histogram& histogram = obs::MetricsRegistry::global().histogram(
      "eval.us", obs::BucketLayout::exponential(1.0, 2.0, 24),
      /*timing=*/true);
  return histogram;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t state) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a_reverse(const void* data, std::size_t bytes,
                            std::uint64_t state) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = bytes; i > 0; --i) {
    state ^= p[i - 1];
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t mix64(std::uint64_t x) {
  // SplitMix64 finalizer.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// 128-bit content identity of a split: two independent byte passes
/// (forward and reverse order, distinct bases) over features then labels.
/// Used as an exact key; a collision would alias cache entries, so the
/// combined 128 bits + sample count keep that probability negligible.
SplitKey split_key_of(const data::DataSplit& split) {
  const std::span<const float> features = split.features.values();
  const std::size_t feature_bytes = features.size() * sizeof(float);
  const std::size_t label_bytes = split.labels.size() * sizeof(std::int32_t);

  SplitKey key;
  key.samples = split.size();
  key.lo = fnv1a(features.data(), feature_bytes, kFnvBasis);
  key.lo = fnv1a(split.labels.data(), label_bytes, key.lo);
  std::uint64_t hi = fnv1a_reverse(split.labels.data(), label_bytes,
                                   kFnvBasis ^ 0x9e3779b97f4a7c15ull);
  hi = fnv1a_reverse(features.data(), feature_bytes, hi);
  key.hi = mix64(hi);
  return key;
}

/// Per-batch partial score of one model; reduced per model in ascending
/// batch order, which reproduces evaluate()'s accumulation bit-for-bit.
struct BatchScore {
  float loss = 0.0f;
  std::size_t correct = 0;
};

BatchScore score_batch(const nn::Tensor& logits,
                       std::span<const std::int32_t> labels) {
  BatchScore score;
  score.loss = nn::softmax_cross_entropy_loss(logits, labels);
  for (std::size_t row = 0; row < labels.size(); ++row) {
    if (logits.argmax_row(row) == static_cast<std::size_t>(labels[row])) {
      ++score.correct;
    }
  }
  return score;
}

void run_tasks(ThreadPool* pool, std::size_t n,
               const std::function<void(std::size_t)>& body) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) body(i);
  } else {
    pool->parallel_for(n, body);
  }
}

/// The default backend: pooled nn::Model instances running the ops kernels.
/// eval() is exactly the pre-batched standalone probe; eval_many() fuses a
/// group by sharing each activation batch's conv im2col + panel pack across
/// every model (the per-model weight packs and reduction chains are
/// untouched, so each model's result is bit-identical to its solo eval) and
/// driving the k×batches grid through the kernel pool — one leased instance
/// per model, because layers cache activations and a single instance cannot
/// run two batches concurrently.
class ModelEvalBackend final : public EvalBackend {
 public:
  explicit ModelEvalBackend(EvalEngine& engine) : engine_(engine) {}

  data::EvalResult eval(std::span<const float> params,
                        const BatchedSplit& batched, ThreadPool* pool) override {
    (void)pool;  // Single probe: kernels stay serial, as the probe sites did.
    EvalEngine::ModelLease lease = engine_.acquire();
    lease.model().set_parameters(params);
    return engine_.evaluate(lease.model(), batched);
  }

  void eval_many(std::span<const std::span<const float>> params,
                 const BatchedSplit& batched,
                 std::span<data::EvalResult> results,
                 ThreadPool* pool) override;

 private:
  EvalEngine& engine_;
};

void ModelEvalBackend::eval_many(std::span<const std::span<const float>> params,
                                 const BatchedSplit& batched,
                                 std::span<data::EvalResult> results,
                                 ThreadPool* pool) {
  const std::size_t k = params.size();
  assert(results.size() >= k);
  if (k == 0) return;
  if (batched.samples() == 0) {
    for (std::size_t i = 0; i < k; ++i) results[i] = data::EvalResult{};
    return;
  }
  // The reference-kernel dispatch has no prepacked form, and a lone model
  // has nothing to share; both take the standalone path.
  if (k == 1 || nn::ops::reference_kernels_enabled()) {
    for (std::size_t i = 0; i < k; ++i) {
      results[i] = eval(params[i], batched, pool);
    }
    return;
  }

  obs::TraceScope span("eval.forward", &eval_us_histogram());
  const std::size_t batches = batched.batch_count();
  std::vector<EvalEngine::ModelLease> leases;
  leases.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    leases.push_back(engine_.acquire());
    leases.back().model().set_parameters(params[i]);
  }

  // Input-pack sharing applies when the stack opens with a convolution
  // (every leased model has the same architecture); other stacks still get
  // the grid parallelism with per-model full forwards.
  nn::Model& probe = leases.front().model();
  const bool fuse_conv =
      probe.layer_count() > 1 && probe.layer(0).name() == "Conv2D";

  std::vector<BatchScore> grid(k * batches);
  if (fuse_conv) {
    const nn::ops::Conv2DShape shape =
        static_cast<nn::Conv2D&>(probe.layer(0)).shape();
    nn::ops::Workspace pack_scratch;
    std::vector<float> packed;
    for (std::size_t b = 0; b < batches; ++b) {
      const nn::Tensor& x = batched.features(b);
      const std::size_t h = x.dim(2), w = x.dim(3);
      const std::size_t per_sample =
          nn::ops::conv2d_packed_input_floats(shape, h, w);
      packed.resize(x.dim(0) * per_sample);
      nn::ops::conv2d_pack_input(x, shape, packed, &pack_scratch);
      pack_reuse_counter().add(k - 1);
      run_tasks(pool, k, [&](std::size_t i) {
        nn::Model& model = leases[i].model();
        auto& conv = static_cast<nn::Conv2D&>(model.layer(0));
        nn::Tensor y1({x.dim(0), shape.out_channels, shape.out_extent(h),
                       shape.out_extent(w)});
        nn::ops::conv2d_forward_prepacked(packed, x.dim(0), h, w,
                                          conv.weight(), conv.bias(), shape,
                                          y1);
        const nn::Tensor logits =
            model.forward_from(1, y1, /*training=*/false);
        grid[i * batches + b] = score_batch(logits, batched.labels(b));
      });
    }
  } else {
    run_tasks(pool, k, [&](std::size_t i) {
      nn::Model& model = leases[i].model();
      for (std::size_t b = 0; b < batches; ++b) {
        const nn::Tensor logits =
            model.forward(batched.features(b), /*training=*/false);
        grid[i * batches + b] = score_batch(logits, batched.labels(b));
      }
    });
  }

  // Serial reduction in (model, batch) order: the same double-precision
  // chain and counter totals as k standalone evaluate() calls.
  for (std::size_t i = 0; i < k; ++i) {
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      const std::span<const std::int32_t> labels = batched.labels(b);
      loss_sum += static_cast<double>(grid[i * batches + b].loss) *
                  static_cast<double>(labels.size());
      correct += grid[i * batches + b].correct;
      forward_counter().increment();
      example_counter().add(labels.size());
    }
    results[i].samples = batched.samples();
    results[i].loss = loss_sum / static_cast<double>(batched.samples());
    results[i].accuracy =
        static_cast<double>(correct) / static_cast<double>(batched.samples());
  }
}

}  // namespace

void EvalBackend::eval_many(std::span<const std::span<const float>> params,
                            const BatchedSplit& batched,
                            std::span<data::EvalResult> results,
                            ThreadPool* pool) {
  assert(results.size() >= params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    results[i] = eval(params[i], batched, pool);
  }
}

ParamsKey::ParamsKey() : ParamsKey(std::vector<tangle::PayloadId>{}) {}

ParamsKey::ParamsKey(std::vector<tangle::PayloadId> payloads)
    : payloads_(std::move(payloads)),
      hash_(fnv1a(payloads_.data(),
                  payloads_.size() * sizeof(tangle::PayloadId), kFnvBasis)) {}

BatchedSplit::BatchedSplit(const data::DataSplit& split,
                           std::size_t batch_size, SplitKey key)
    : key_(key), samples_(split.size()) {
  assert(batch_size > 0);
  features_.reserve((samples_ + batch_size - 1) / batch_size);
  labels_.reserve(features_.capacity());
  // Batch boundaries replicate data::evaluate exactly: [start, start+count)
  // for start = 0, batch_size, 2*batch_size, ...
  for (std::size_t start = 0; start < samples_; start += batch_size) {
    const std::size_t count = std::min(batch_size, samples_ - start);
    data::DataSplit batch = split.slice(start, count);
    bytes_ += batch.features.size() * sizeof(float) +
              batch.labels.size() * sizeof(std::int32_t);
    features_.push_back(std::move(batch.features));
    labels_.push_back(std::move(batch.labels));
  }
}

EvalEngine::EvalEngine(nn::ModelFactory factory, EvalEngineConfig config)
    : factory_(std::move(factory)),
      config_(std::move(config)),
      shards_(std::make_unique<Shard[]>(kShards)) {
  assert(factory_);
  // Cached results are a pure function of (params, split, batch
  // boundaries); a divergent batch size would silently make cached and
  // direct evaluations disagree, so reject it outright.
  if (config_.batch_size != data::kEvalBatchSize) {
    throw std::invalid_argument(
        "EvalEngineConfig::batch_size must equal data::kEvalBatchSize so "
        "cached and direct evaluations share batch boundaries");
  }
  backend_ = config_.backend_factory != nullptr
                 ? config_.backend_factory(*this)
                 : std::make_unique<ModelEvalBackend>(*this);
}

EvalEngine::ModelLease::~ModelLease() {
  if (engine_ != nullptr) engine_->release(std::move(model_));
}

EvalEngine::ModelLease EvalEngine::acquire() {
  std::unique_ptr<nn::Model> model;
  {
    const MutexLock lock(pool_mutex_);
    if (!pool_.empty()) {
      model = std::move(pool_.back());
      pool_.pop_back();
    } else {
      ++models_created_;
    }
  }
  // Factory runs outside the lock; the slot was already accounted for.
  if (model == nullptr) model = std::make_unique<nn::Model>(factory_());
  return ModelLease(this, std::move(model));
}

void EvalEngine::release(std::unique_ptr<nn::Model> model) {
  const MutexLock lock(pool_mutex_);
  pool_.push_back(std::move(model));
}

std::shared_ptr<const BatchedSplit> EvalEngine::find_split(
    const SplitKey& key) {
  for (SplitSlot& slot : splits_) {
    if (slot.batched->key() == key) {
      slot.last_used = ++split_tick_;
      return slot.batched;
    }
  }
  return nullptr;
}

std::shared_ptr<const BatchedSplit> EvalEngine::prepare(
    const data::DataSplit& split) {
  assert(!split.empty());
  const SplitKey key = split_key_of(split);
  if (config_.use_cache) {
    const MutexLock lock(split_mutex_);
    if (auto resident = find_split(key)) {
      split_reuse_counter().increment();
      return resident;
    }
  }
  split_build_counter().increment();
  auto batched =
      std::make_shared<const BatchedSplit>(split, config_.batch_size, key);
  if (!config_.use_cache) return batched;

  // Evicted splits are parked here and freed after the lock releases: a
  // pooled-test split can be tens of MB, and running its destructor under
  // split_mutex_ would block every concurrent probe's prepare().
  std::vector<std::shared_ptr<const BatchedSplit>> evicted;
  {
    const MutexLock lock(split_mutex_);
    // Another thread may have inserted the same contents while we
    // gathered; prefer the resident copy so probes share one instance.
    if (auto resident = find_split(key)) return resident;
    splits_.push_back(SplitSlot{batched, ++split_tick_});
    split_bytes_ += batched->bytes();
    // Evict least-recently-used entries over budget, always keeping the
    // newest (linear scan over a small vector — no unordered iteration).
    while (split_bytes_ > config_.batched_budget_bytes && splits_.size() > 1) {
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < splits_.size(); ++i) {
        if (splits_[i].last_used < splits_[oldest].last_used) oldest = i;
      }
      split_bytes_ -= splits_[oldest].batched->bytes();
      evicted.push_back(std::move(splits_[oldest].batched));
      splits_.erase(splits_.begin() + static_cast<std::ptrdiff_t>(oldest));
    }
  }
  return batched;
}

data::EvalResult EvalEngine::evaluate(nn::Model& model,
                                      const BatchedSplit& batched) {
  obs::TraceScope span("eval.forward", &eval_us_histogram());
  data::EvalResult result;
  if (batched.samples() == 0) return result;

  // Accumulation order matches data::evaluate bit-for-bit: per-batch mean
  // loss scaled by the batch count, summed in double over batches in order.
  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batched.batch_count(); ++b) {
    const nn::Tensor logits =
        model.forward(batched.features(b), /*training=*/false);
    const std::span<const std::int32_t> labels = batched.labels(b);
    loss_sum +=
        static_cast<double>(nn::softmax_cross_entropy_loss(logits, labels)) *
        static_cast<double>(labels.size());
    for (std::size_t row = 0; row < labels.size(); ++row) {
      if (logits.argmax_row(row) == static_cast<std::size_t>(labels[row])) {
        ++correct;
      }
    }
    forward_counter().increment();
    example_counter().add(labels.size());
  }
  result.samples = batched.samples();
  result.loss = loss_sum / static_cast<double>(batched.samples());
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(batched.samples());
  return result;
}

EvalOutcome EvalEngine::evaluate_cached(const ParamsKey& key, nn::Model& model,
                                        const BatchedSplit& batched) {
  const ResultKey result_key{key, batched.key()};
  data::EvalResult cached;
  if (lookup(result_key, cached)) {
    cache_hit_counter().increment();
    return EvalOutcome{cached, true};
  }
  cache_miss_counter().increment();
  const data::EvalResult result = evaluate(model, batched);
  insert(result_key, result);
  return EvalOutcome{result, false};
}

EvalOutcome EvalEngine::payload_eval(const tangle::ModelStore& store,
                                     tangle::PayloadId payload,
                                     const BatchedSplit& batched) {
  const ResultKey result_key{ParamsKey::single(payload), batched.key()};
  data::EvalResult cached;
  if (lookup(result_key, cached)) {
    cache_hit_counter().increment();
    return EvalOutcome{cached, true};
  }
  cache_miss_counter().increment();
  const data::EvalResult result =
      backend_->eval(store.get(payload), batched, nullptr);
  insert(result_key, result);
  return EvalOutcome{result, false};
}

EvalOutcome EvalEngine::params_eval(const ParamsKey& key,
                                    std::span<const float> params,
                                    const BatchedSplit& batched) {
  const ResultKey result_key{key, batched.key()};
  data::EvalResult cached;
  if (lookup(result_key, cached)) {
    cache_hit_counter().increment();
    return EvalOutcome{cached, true};
  }
  cache_miss_counter().increment();
  const data::EvalResult result = backend_->eval(params, batched, nullptr);
  insert(result_key, result);
  return EvalOutcome{result, false};
}

std::vector<EvalOutcome> EvalEngine::evaluate_many(
    std::span<const EvalRequest> requests, const BatchedSplit& batched,
    ThreadPool* pool) {
  std::vector<EvalOutcome> outcomes(requests.size());
  if (requests.empty()) return outcomes;

  if (!config_.use_batched) {
    // Off-switch: replay the exact standalone probe per request, in order —
    // byte-identical results and counter sequences to the pre-batched code.
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const EvalRequest& request = requests[i];
      if (request.key.has_value()) {
        outcomes[i] = params_eval(*request.key, request.params, batched);
      } else {
        outcomes[i] =
            EvalOutcome{backend_->eval(request.params, batched, nullptr),
                        false};
      }
    }
    return outcomes;
  }

  batched_group_counter().increment();

  // Resolve cache hits up front so only misses enter the fused pass. A key
  // duplicated within the group is evaluated once: the first occurrence is
  // the miss, later ones resolve as hits against its result — the same
  // hit/miss sequence the serial probe order produces (where the first
  // probe's insert precedes the second probe's lookup).
  std::vector<std::size_t> miss_requests;  // request index per fused slot
  std::vector<std::pair<std::size_t, std::size_t>> aliases;  // request, slot
  miss_requests.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const EvalRequest& request = requests[i];
    if (!request.key.has_value()) {
      // No cache identity: always evaluated, never cached or deduplicated.
      miss_requests.push_back(i);
      continue;
    }
    data::EvalResult cached;
    if (lookup(ResultKey{*request.key, batched.key()}, cached)) {
      cache_hit_counter().increment();
      outcomes[i] = EvalOutcome{cached, true};
      continue;
    }
    if (config_.use_cache) {
      bool aliased = false;
      for (std::size_t slot = 0; slot < miss_requests.size(); ++slot) {
        const EvalRequest& prior = requests[miss_requests[slot]];
        if (prior.key.has_value() && *prior.key == *request.key) {
          cache_hit_counter().increment();
          aliases.emplace_back(i, slot);
          aliased = true;
          break;
        }
      }
      if (aliased) continue;
    }
    cache_miss_counter().increment();
    miss_requests.push_back(i);
  }

  std::vector<data::EvalResult> results(miss_requests.size());
  if (!miss_requests.empty()) {
    batched_model_counter().add(miss_requests.size());
    std::vector<std::span<const float>> params(miss_requests.size());
    for (std::size_t slot = 0; slot < miss_requests.size(); ++slot) {
      params[slot] = requests[miss_requests[slot]].params;
    }
    backend_->eval_many(params, batched, results, pool);
    for (std::size_t slot = 0; slot < miss_requests.size(); ++slot) {
      const EvalRequest& request = requests[miss_requests[slot]];
      outcomes[miss_requests[slot]] = EvalOutcome{results[slot], false};
      if (request.key.has_value()) {
        insert(ResultKey{*request.key, batched.key()}, results[slot]);
      }
    }
  }
  for (const auto& [request_index, slot] : aliases) {
    outcomes[request_index] = EvalOutcome{results[slot], true};
  }
  return outcomes;
}

std::vector<EvalOutcome> EvalEngine::payloads_eval_many(
    const tangle::ModelStore& store,
    std::span<const tangle::PayloadId> payloads, const BatchedSplit& batched,
    ThreadPool* pool) {
  std::vector<EvalRequest> requests(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    requests[i].params = store.get(payloads[i]);
    requests[i].key = ParamsKey::single(payloads[i]);
  }
  return evaluate_many(requests, batched, pool);
}

std::size_t EvalEngine::ResultKeyHash::operator()(
    const ResultKey& key) const noexcept {
  // The payload-list pass is precomputed by ParamsKey at construction; only
  // the fixed-size split key is mixed per lookup. The resulting value is
  // unchanged from hashing both parts here.
  const std::uint64_t state =
      fnv1a(&key.split, sizeof(SplitKey), key.params.hash());
  return static_cast<std::size_t>(mix64(state));
}

EvalEngine::Shard& EvalEngine::shard_for(const ResultKey& key) const {
  return shards_[ResultKeyHash{}(key) % kShards];
}

bool EvalEngine::lookup(const ResultKey& key, data::EvalResult& out) const {
  if (!config_.use_cache) return false;
  Shard& shard = shard_for(key);
  const ReaderLock lock(shard.mutex);
  const auto it = shard.results.find(key);
  if (it == shard.results.end()) return false;
  out = it->second;
  return true;
}

void EvalEngine::insert(const ResultKey& key, const data::EvalResult& result) {
  if (!config_.use_cache) return;
  Shard& shard = shard_for(key);
  const WriterLock lock(shard.mutex);
  shard.results.emplace(key, result);
}

std::size_t EvalEngine::models_created() const {
  const MutexLock lock(pool_mutex_);
  return models_created_;
}

std::size_t EvalEngine::pool_size() const {
  const MutexLock lock(pool_mutex_);
  return pool_.size();
}

std::size_t EvalEngine::cached_results() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    const ReaderLock lock(shards_[i].mutex);
    total += shards_[i].results.size();
  }
  return total;
}

std::size_t EvalEngine::cached_splits() const {
  const MutexLock lock(split_mutex_);
  return splits_.size();
}

}  // namespace tanglefl::core
