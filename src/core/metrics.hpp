// Experiment metrics shared by the tangle simulation and the FedAvg
// baseline: one record per evaluation round, in the shape of the series
// plotted in Figs. 3-6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tanglefl::core {

struct RoundRecord {
  std::uint64_t round = 0;
  double accuracy = 0.0;  // consensus/global model accuracy on pooled test
  double loss = 0.0;
  // Fraction of source-class test samples predicted as the target class
  // (Fig. 6b); 0 when no attack metric was requested.
  double target_misclassification = 0.0;
  // Backdoor attack-success rate on trigger-stamped test samples; only
  // populated by backdoor-attack simulations.
  double backdoor_success = 0.0;
  std::size_t tangle_size = 0;     // transactions in the ledger (tangle only)
  std::size_t tip_count = 0;       // current tips (tangle only)
  double publish_rate = 0.0;       // honest publishes / honest participants
  // Cumulative counts since the start of the run. Accumulated every round
  // (not just eval rounds), so publish series are complete rather than
  // sampled at eval_every boundaries. Appended last: older code aggregate-
  // initializes the prefix positionally.
  std::uint64_t published_cumulative = 0;   // transactions added to the ledger
  std::uint64_t suppressed_cumulative = 0;  // steps that abstained/failed gate
  std::size_t ledger_bytes = 0;             // payload bytes in the model store
};

struct RunResult {
  std::string label;
  std::vector<RoundRecord> history;

  /// Accuracy of the last evaluation, or 0 if none ran.
  double final_accuracy() const noexcept {
    return history.empty() ? 0.0 : history.back().accuracy;
  }

  /// First evaluated round whose accuracy reaches `threshold`, or -1. Used
  /// for Table II ("rounds to reach 70% accuracy of the reference model").
  std::int64_t rounds_to_accuracy(double threshold) const noexcept {
    for (const auto& record : history) {
      if (record.accuracy >= threshold) {
        return static_cast<std::int64_t>(record.round);
      }
    }
    return -1;
  }
};

}  // namespace tanglefl::core
