// Krum and Multi-Krum (Blanchard et al., "Machine Learning with
// Adversaries", NeurIPS 2017) — the median-based byzantine-tolerant
// aggregation rule the paper discusses as the standard defence for
// centralized federated learning (Section II-A), and the defence
// blockchain-FL systems bolt onto gradient batches (Section II-B).
//
// Krum scores every candidate update by the sum of squared distances to
// its n - f - 2 nearest neighbours and selects the lowest-scoring one;
// Multi-Krum selects the m best and averages them. Tolerates up to f
// byzantine updates per batch when n >= 2f + 3.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/params.hpp"

namespace tanglefl::fedavg {

struct KrumResult {
  // Indices of the selected updates, best (lowest score) first.
  std::vector<std::size_t> selected;
  // Krum score per input update (sum of squared distances to the
  // n - f - 2 nearest neighbours).
  std::vector<double> scores;
};

/// Scores all updates and selects the `multi_k` best. Requires at least
/// one update; `byzantine_f` is clamped so that every update keeps at
/// least one neighbour in its score.
KrumResult krum_select(std::span<const nn::ParamVector> updates,
                       std::size_t byzantine_f, std::size_t multi_k = 1);

/// Convenience: runs krum_select and returns the unweighted average of the
/// selected updates (plain Krum for multi_k == 1).
nn::ParamVector krum_aggregate(std::span<const nn::ParamVector> updates,
                               std::size_t byzantine_f,
                               std::size_t multi_k = 1);

}  // namespace tanglefl::fedavg
