// Federated averaging baseline (McMahan et al.), the comparison system in
// Figs. 3 and 4: a central server distributes the global model, a sampled
// client fraction trains locally, and the server aggregates the returned
// parameters weighted by local sample counts.
//
// The server optionally aggregates with Krum / Multi-Krum (Section II-A's
// byzantine-tolerant rule) and supports the same poisoning attacks as the
// tangle simulation, so the centralized defences can be compared against
// the tangle's decentralized one under identical adversaries.
#pragma once

#include "core/metrics.hpp"
#include "core/simulation.hpp"
#include "data/dataset.hpp"
#include "data/poison.hpp"
#include "data/training.hpp"
#include "nn/model.hpp"
#include "nn/params.hpp"
#include "support/thread_pool.hpp"

namespace tanglefl::fedavg {

enum class Aggregation {
  kWeightedAverage,  // classic FedAvg
  kKrum,             // select the single Krum winner
  kMultiKrum,        // average the multi_k best by Krum score
};

struct FedAvgConfig {
  std::size_t rounds = 50;
  std::size_t clients_per_round = 10;
  std::size_t eval_every = 5;
  double eval_nodes_fraction = 0.1;
  data::TrainConfig training;
  data::LabelFlip flip{3, 8};  // attack metric tracked for parity

  Aggregation aggregation = Aggregation::kWeightedAverage;
  // Byzantine count assumed by (Multi-)Krum; clamped internally.
  std::size_t krum_byzantine_f = 2;
  std::size_t multi_k = 3;

  // Adversary model mirroring core::SimulationConfig.
  core::AttackType attack = core::AttackType::kNone;
  double malicious_fraction = 0.0;
  std::uint64_t attack_start_round = 0;

  std::uint64_t seed = 1;
  std::size_t threads = 1;
};

class FedAvgServer {
 public:
  /// The dataset and factory must outlive the server.
  FedAvgServer(const data::FederatedDataset& dataset,
               nn::ModelFactory factory, FedAvgConfig config);

  /// Runs all configured rounds; returns the evaluation history.
  core::RunResult run();

  /// Advances one round (1-based). Returns the number of clients that
  /// contributed an update.
  std::size_t run_round(std::uint64_t round);

  /// Evaluates the current global model like the tangle evaluation does.
  core::RoundRecord evaluate(std::uint64_t round);

  const nn::ParamVector& global_params() const noexcept { return global_; }
  const std::vector<std::size_t>& malicious_users() const noexcept {
    return malicious_users_;
  }

 private:
  bool attack_active(std::uint64_t round) const noexcept;
  bool is_malicious(std::size_t user) const noexcept;

  const data::FederatedDataset* dataset_;
  nn::ModelFactory factory_;
  FedAvgConfig config_;
  Rng master_rng_;
  ThreadPool pool_;
  nn::ParamVector global_;
  std::vector<std::size_t> malicious_users_;    // sorted
  std::vector<data::UserData> poisoned_users_;  // parallel (label flip)
};

/// Convenience wrapper: construct, run, and label a baseline run.
core::RunResult run_fedavg(const data::FederatedDataset& dataset,
                           nn::ModelFactory factory,
                           const FedAvgConfig& config,
                           std::string label = "fedavg");

}  // namespace tanglefl::fedavg
