#include "fedavg/fedavg.hpp"

#include <algorithm>

#include "fedavg/krum.hpp"
#include "support/log.hpp"

namespace tanglefl::fedavg {
namespace {

constexpr std::uint64_t kInitStream = 0x6e51;
constexpr std::uint64_t kClientStream = 0xc11e;
constexpr std::uint64_t kSelectStream = 0x9a57;
constexpr std::uint64_t kEvalStream = 0xe7a1;
constexpr std::uint64_t kMaliciousStream = 0x3a11;
constexpr std::uint64_t kNoiseStream = 0xbad5;

}  // namespace

FedAvgServer::FedAvgServer(const data::FederatedDataset& dataset,
                           nn::ModelFactory factory, FedAvgConfig config)
    : dataset_(&dataset),
      factory_(std::move(factory)),
      config_(config),
      master_rng_(config.seed),
      pool_(std::max<std::size_t>(1, config.threads)) {
  nn::Model model = factory_();
  Rng init_rng = master_rng_.split(kInitStream);
  model.init(init_rng);
  global_ = model.get_parameters();

  const std::size_t num_users = dataset_->num_users();
  const auto malicious_count = static_cast<std::size_t>(
      config_.malicious_fraction * static_cast<double>(num_users) + 0.5);
  if (malicious_count > 0 && config_.attack != core::AttackType::kNone) {
    Rng rng = master_rng_.split(kMaliciousStream);
    malicious_users_ =
        rng.sample_without_replacement(num_users, malicious_count);
    std::sort(malicious_users_.begin(), malicious_users_.end());
    if (config_.attack == core::AttackType::kLabelFlip) {
      poisoned_users_.reserve(malicious_users_.size());
      for (const std::size_t u : malicious_users_) {
        poisoned_users_.push_back(
            data::make_label_flip_user(dataset_->user(u), config_.flip));
      }
    }
  }
}

bool FedAvgServer::attack_active(std::uint64_t round) const noexcept {
  return config_.attack != core::AttackType::kNone &&
         round >= config_.attack_start_round && !malicious_users_.empty();
}

bool FedAvgServer::is_malicious(std::size_t user) const noexcept {
  return std::binary_search(malicious_users_.begin(), malicious_users_.end(),
                            user);
}

std::size_t FedAvgServer::run_round(std::uint64_t round) {
  const std::size_t num_users = dataset_->num_users();
  const std::size_t clients = std::min(config_.clients_per_round, num_users);

  Rng selection_rng = master_rng_.split(kSelectStream).split(round);
  const std::vector<std::size_t> chosen =
      selection_rng.sample_without_replacement(num_users, clients);
  const bool attacking = attack_active(round);

  std::vector<nn::ParamVector> updates(clients);
  std::vector<double> weights(clients, 0.0);

  pool_.parallel_for(clients, [&](std::size_t slot) {
    const std::size_t user_index = chosen[slot];
    const bool malicious = attacking && is_malicious(user_index);

    if (malicious && config_.attack == core::AttackType::kRandomPoison) {
      // The Fig. 5 adversary: submit standard-normal parameters. The lie
      // extends to the sample count, claiming the user's full weight.
      nn::ParamVector poison(global_.size());
      Rng noise_rng = master_rng_.split(kNoiseStream)
                          .split(round)
                          .split(user_index + 1);
      for (auto& p : poison) p = static_cast<float>(noise_rng.normal());
      updates[slot] = std::move(poison);
      weights[slot] = std::max<double>(
          1.0, static_cast<double>(dataset_->user(user_index).train.size()));
      return;
    }

    const data::UserData* user = &dataset_->user(user_index);
    if (malicious && config_.attack == core::AttackType::kLabelFlip) {
      const auto it = std::lower_bound(malicious_users_.begin(),
                                       malicious_users_.end(), user_index);
      user = &poisoned_users_[static_cast<std::size_t>(
          it - malicious_users_.begin())];
    }
    if (user->train.empty()) return;

    nn::Model model = factory_();
    model.set_parameters(global_);
    Rng train_rng = master_rng_.split(kClientStream)
                        .split(round)
                        .split(user_index + 1);
    data::train_local(model, user->train, config_.training, train_rng);
    updates[slot] = model.get_parameters();
    // FedAvg weights client updates by their local sample count.
    weights[slot] = static_cast<double>(user->train.size());
  });

  std::vector<nn::ParamVector> contributing;
  std::vector<double> contributing_weights;
  for (std::size_t slot = 0; slot < clients; ++slot) {
    if (weights[slot] <= 0.0) continue;
    contributing.push_back(std::move(updates[slot]));
    contributing_weights.push_back(weights[slot]);
  }
  if (contributing.empty()) return 0;

  switch (config_.aggregation) {
    case Aggregation::kWeightedAverage:
      global_ =
          nn::weighted_average_params(contributing, contributing_weights);
      break;
    case Aggregation::kKrum:
      global_ = krum_aggregate(contributing, config_.krum_byzantine_f, 1);
      break;
    case Aggregation::kMultiKrum:
      global_ = krum_aggregate(contributing, config_.krum_byzantine_f,
                               config_.multi_k);
      break;
  }
  return contributing.size();
}

core::RoundRecord FedAvgServer::evaluate(std::uint64_t round) {
  core::RoundRecord record;
  record.round = round;

  const std::size_t num_users = dataset_->num_users();
  const auto eval_users = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.eval_nodes_fraction *
                                  static_cast<double>(num_users) +
                                  0.5));
  Rng eval_rng = master_rng_.split(kEvalStream).split(round);
  const std::vector<std::size_t> users =
      eval_rng.sample_without_replacement(num_users, eval_users);
  const data::DataSplit pooled = dataset_->pooled_test(users);
  if (pooled.empty()) return record;

  nn::Model model = factory_();
  model.set_parameters(global_);
  const data::EvalResult eval = data::evaluate(model, pooled);
  record.accuracy = eval.accuracy;
  record.loss = eval.loss;
  record.target_misclassification = data::targeted_misclassification_rate(
      model, pooled, config_.flip.source_class, config_.flip.target_class);
  return record;
}

core::RunResult FedAvgServer::run() {
  core::RunResult result;
  result.label = "fedavg";
  for (std::uint64_t round = 1; round <= config_.rounds; ++round) {
    run_round(round);
    if (round % config_.eval_every == 0 || round == config_.rounds) {
      const core::RoundRecord record = evaluate(round);
      result.history.push_back(record);
      log_info() << "fedavg round " << round << ": acc=" << record.accuracy
                 << " loss=" << record.loss;
    }
  }
  return result;
}

core::RunResult run_fedavg(const data::FederatedDataset& dataset,
                           nn::ModelFactory factory,
                           const FedAvgConfig& config, std::string label) {
  FedAvgServer server(dataset, std::move(factory), config);
  core::RunResult result = server.run();
  result.label = std::move(label);
  return result;
}

}  // namespace tanglefl::fedavg
