#include "fedavg/krum.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tanglefl::fedavg {

KrumResult krum_select(std::span<const nn::ParamVector> updates,
                       std::size_t byzantine_f, std::size_t multi_k) {
  const std::size_t n = updates.size();
  if (n == 0) throw std::invalid_argument("krum_select: no updates");
  for (const auto& update : updates) {
    if (update.size() != updates.front().size()) {
      throw std::invalid_argument("krum_select: size mismatch");
    }
  }

  KrumResult result;
  result.scores.assign(n, 0.0);
  if (n == 1) {
    result.selected = {0};
    return result;
  }

  // Pairwise squared distances.
  std::vector<double> distance(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const auto& a = updates[i];
      const auto& b = updates[j];
      for (std::size_t k = 0; k < a.size(); ++k) {
        const double d = static_cast<double>(a[k]) - b[k];
        acc += d * d;
      }
      distance[i * n + j] = acc;
      distance[j * n + i] = acc;
    }
  }

  // Each update's score sums its n - f - 2 closest neighbour distances
  // (clamped to at least one neighbour so small batches still rank).
  const std::size_t raw_neighbours =
      n > byzantine_f + 2 ? n - byzantine_f - 2 : 1;
  const std::size_t neighbours = std::min(raw_neighbours, n - 1);
  std::vector<double> row(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row[count++] = distance[i * n + j];
    }
    std::nth_element(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(neighbours - 1),
                     row.end());
    double score = 0.0;
    for (std::size_t k = 0; k < neighbours; ++k) score += row[k];
    result.scores[i] = score;
  }

  // Select the multi_k lowest scores, best first.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.scores[a] < result.scores[b];
  });
  order.resize(std::min(std::max<std::size_t>(1, multi_k), n));
  result.selected = std::move(order);
  return result;
}

nn::ParamVector krum_aggregate(std::span<const nn::ParamVector> updates,
                               std::size_t byzantine_f, std::size_t multi_k) {
  const KrumResult result = krum_select(updates, byzantine_f, multi_k);
  std::vector<const nn::ParamVector*> selected;
  selected.reserve(result.selected.size());
  for (const std::size_t i : result.selected) {
    selected.push_back(&updates[i]);
  }
  return nn::average_params(selected);
}

}  // namespace tanglefl::fedavg
