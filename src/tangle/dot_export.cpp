#include "tangle/dot_export.hpp"

#include <algorithm>
#include <sstream>

namespace tanglefl::tangle {

std::string to_dot(const TangleView& view, const DotOptions& options) {
  const std::vector<TxIndex> tips = view.tips();
  std::vector<bool> is_tip(view.size(), false);
  for (const TxIndex t : tips) is_tip[t] = true;

  // A transaction is part of the consensus if every tip approves it
  // (Fig. 2's dark gray vertices).
  std::vector<bool> in_consensus(view.size(), false);
  if (options.color_consensus && !tips.empty()) {
    for (TxIndex i = 0; i < view.size(); ++i) {
      bool all = true;
      for (const TxIndex t : tips) {
        if (!view.approves(t, i)) {
          all = false;
          break;
        }
      }
      in_consensus[i] = all;
    }
  }

  std::ostringstream out;
  out << "digraph " << options.graph_name << " {\n";
  out << "  rankdir=RL;\n  node [shape=box, style=filled];\n";
  for (TxIndex i = 0; i < view.size(); ++i) {
    const Transaction& tx = view.tangle().transaction(i);
    std::string color = "white";
    if (i == view.tangle().genesis()) color = "black";
    else if (is_tip[i]) color = "lightgray";
    else if (in_consensus[i]) color = "darkgray";
    out << "  t" << i << " [label=\"" << short_id(tx.id);
    if (options.label_rounds) out << "\\nr" << tx.round;
    out << "\", fillcolor=" << color
        << (color == "black" ? ", fontcolor=white" : "") << "];\n";
  }
  for (TxIndex i = 1; i < view.size(); ++i) {
    const auto& parents = view.tangle().parent_indices(i);
    std::vector<TxIndex> distinct(parents.begin(), parents.end());
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (const TxIndex p : distinct) {
      out << "  t" << i << " -> t" << p << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace tanglefl::tangle
