// Content-addressed payload store. A real ledger separates transaction
// headers from bulky payloads; here the payloads are flat parameter vectors
// shared by all simulated nodes. Identical payloads (e.g. a model republished
// unchanged) deduplicate to one copy. Thread-safe: reads take a shared lock,
// inserts an exclusive one, so parallel node training can resolve parent
// payloads concurrently.
//
// Optional chunk-level dedup (configure_chunking): payload bytes are split
// at content-defined boundaries (tangle/payload_codec.hpp's gear-hash
// cutter) and held in a SHA-256-keyed refcounted chunk table, so
// near-identical payloads share storage beyond whole-payload dedup. Live
// entries keep their materialized ParamVector — get()'s reference-stability
// contract is untouched — while the chunk table is the at-rest tier:
// serialization writes each unique chunk once, and the
// ledger.codec.{chunks,chunk_dedup_hits} counters expose the sharing.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "nn/params.hpp"
#include "support/sha256.hpp"
#include "support/sync.hpp"
#include "tangle/transaction.hpp"

namespace tanglefl::tangle {

/// Parameters of the content-defined chunker (see
/// tangle/payload_codec.hpp's chunk_boundaries).
struct ChunkParams {
  std::size_t min_bytes = 512;
  std::size_t max_bytes = 8192;
  // Average chunk size ~ min_bytes + 2^mask_bits.
  unsigned mask_bits = 11;
};

class ModelStore {
 public:
  /// Inserts (or deduplicates) a payload; returns its handle and hash.
  struct AddResult {
    PayloadId id = 0;
    Sha256Digest hash{};
    bool deduplicated = false;
  };
  AddResult add(nn::ParamVector params);

  /// Payload lookup. The returned reference stays valid for the store's
  /// lifetime (payloads are immutable once inserted).
  const nn::ParamVector& get(PayloadId id) const;

  /// Hash recorded for a payload at insertion.
  const Sha256Digest& hash_of(PayloadId id) const;

  std::size_t size() const;

  /// Total floats held by live (unreleased) payloads — O(1); released
  /// payloads contribute nothing.
  std::size_t total_parameters() const;

  /// Bytes of live payload data (total_parameters() * sizeof(float)).
  std::size_t live_bytes() const;

  static Sha256Digest hash_params(std::span<const float> params);

  /// Enables content-defined chunk dedup for every subsequently added
  /// payload and switches serialization to the chunked v3 body. Only legal
  /// on an empty store (throws std::logic_error otherwise): chunking is a
  /// whole-ledger storage format, not a per-payload option.
  void configure_chunking(const ChunkParams& params);
  bool chunking_enabled() const;
  ChunkParams chunk_params() const;

  /// Unique chunks currently held (0 when chunking is off).
  std::size_t chunk_count() const;

  /// Garbage collection for milestone pruning (tangle/milestones.hpp):
  /// drops a payload's parameters while keeping its id slot and hash, so
  /// frozen transaction headers stay verifiable. The id leaves the dedup
  /// index — re-adding identical params later yields a fresh id. get() on
  /// a released payload throws std::logic_error (a released payload is
  /// referenced only below the prune frontier, which no consumer reads).
  /// Chunks referenced only by the released payload are freed too.
  void release(PayloadId id);
  bool is_released(PayloadId id) const;

  /// Appends a released (parameters-free) entry carrying only its hash —
  /// the deserialization path for dumps of pruned ledgers.
  PayloadId add_released(const Sha256Digest& hash);

  /// Binary round trip of all payloads (ids are preserved, so transaction
  /// payload handles stay valid across save/load). The store is not
  /// movable (it owns a mutex), so deserialization fills an existing empty
  /// instance. The current (v3) format leads with a chunked? flag byte:
  /// flat stores serialize exactly the v2 body after it, chunked stores a
  /// chunk-slot table plus per-entry chunk-id spans. deserialize_into_v2
  /// reads the v2 body (liveness flags, no chunk flag);
  /// deserialize_into_v1 the flag-less legacy format. Loading a chunked
  /// dump configures chunking on `store` from the recorded parameters.
  void serialize(ByteWriter& writer) const;
  static void deserialize_into(ByteReader& reader, ModelStore& store);
  static void deserialize_into_v2(ByteReader& reader, ModelStore& store);
  static void deserialize_into_v1(ByteReader& reader, ModelStore& store);

 private:
  struct Entry {
    nn::ParamVector params;
    Sha256Digest hash{};
    bool released = false;
    // Slots into chunks_ covering this payload's bytes in order; empty
    // when chunking is off or the entry was released.
    std::vector<std::uint32_t> chunk_ids;
  };

  /// One unique chunk of payload bytes. Freed slots (refcount 0) keep
  /// their position so live entries' chunk ids stay stable; their bytes
  /// are dropped and the slot is recycled via free_chunk_slots_.
  struct ChunkSlot {
    std::vector<std::uint8_t> bytes;
    Sha256Digest hash{};
    std::size_t refcount = 0;
  };

  void chunk_payload_locked(Entry& entry)
      TANGLEFL_REQUIRES(mutex_);
  void release_chunks_locked(Entry& entry)
      TANGLEFL_REQUIRES(mutex_);

  mutable SharedMutex mutex_;
  // Deque, not vector: get()/hash_of() hand out references that must stay
  // valid while concurrent add() calls grow the store. A vector would
  // reallocate and dangle them (ThreadSanitizer catches exactly this under
  // tests/test_concurrency_stress.cpp); deque growth never moves existing
  // entries. Handing out those references is the one sanctioned escape of
  // guarded state: entries are append-only and immutable once inserted.
  std::deque<Entry> entries_ TANGLEFL_GUARDED_BY(mutex_);
  // hex hash -> id
  std::unordered_map<std::string, PayloadId> by_hash_
      TANGLEFL_GUARDED_BY(mutex_);
  std::size_t live_floats_ TANGLEFL_GUARDED_BY(mutex_) = 0;

  bool chunking_ TANGLEFL_GUARDED_BY(mutex_) = false;
  ChunkParams chunk_params_ TANGLEFL_GUARDED_BY(mutex_){};
  std::deque<ChunkSlot> chunks_ TANGLEFL_GUARDED_BY(mutex_);
  // hex chunk hash -> slot
  std::unordered_map<std::string, std::uint32_t> chunk_by_hash_
      TANGLEFL_GUARDED_BY(mutex_);
  std::vector<std::uint32_t> free_chunk_slots_ TANGLEFL_GUARDED_BY(mutex_);
  std::size_t live_chunks_ TANGLEFL_GUARDED_BY(mutex_) = 0;
};

}  // namespace tanglefl::tangle
