// Content-addressed payload store. A real ledger separates transaction
// headers from bulky payloads; here the payloads are flat parameter vectors
// shared by all simulated nodes. Identical payloads (e.g. a model republished
// unchanged) deduplicate to one copy. Thread-safe: reads take a shared lock,
// inserts an exclusive one, so parallel node training can resolve parent
// payloads concurrently.
#pragma once

#include <deque>
#include <unordered_map>

#include "nn/params.hpp"
#include "support/sha256.hpp"
#include "support/sync.hpp"
#include "tangle/transaction.hpp"

namespace tanglefl::tangle {

class ModelStore {
 public:
  /// Inserts (or deduplicates) a payload; returns its handle and hash.
  struct AddResult {
    PayloadId id = 0;
    Sha256Digest hash{};
    bool deduplicated = false;
  };
  AddResult add(nn::ParamVector params);

  /// Payload lookup. The returned reference stays valid for the store's
  /// lifetime (payloads are immutable once inserted).
  const nn::ParamVector& get(PayloadId id) const;

  /// Hash recorded for a payload at insertion.
  const Sha256Digest& hash_of(PayloadId id) const;

  std::size_t size() const;

  /// Total floats stored (diagnostic for dedup effectiveness).
  std::size_t total_parameters() const;

  static Sha256Digest hash_params(std::span<const float> params);

  /// Binary round trip of all payloads (ids are preserved, so transaction
  /// payload handles stay valid across save/load). The store is not
  /// movable (it owns a mutex), so deserialization fills an existing empty
  /// instance.
  void serialize(ByteWriter& writer) const;
  static void deserialize_into(ByteReader& reader, ModelStore& store);

 private:
  struct Entry {
    nn::ParamVector params;
    Sha256Digest hash{};
  };

  mutable SharedMutex mutex_;
  // Deque, not vector: get()/hash_of() hand out references that must stay
  // valid while concurrent add() calls grow the store. A vector would
  // reallocate and dangle them (ThreadSanitizer catches exactly this under
  // tests/test_concurrency_stress.cpp); deque growth never moves existing
  // entries. Handing out those references is the one sanctioned escape of
  // guarded state: entries are append-only and immutable once inserted.
  std::deque<Entry> entries_ TANGLEFL_GUARDED_BY(mutex_);
  // hex hash -> id
  std::unordered_map<std::string, PayloadId> by_hash_
      TANGLEFL_GUARDED_BY(mutex_);
};

}  // namespace tanglefl::tangle
