// Content-addressed payload store. A real ledger separates transaction
// headers from bulky payloads; here the payloads are flat parameter vectors
// shared by all simulated nodes. Identical payloads (e.g. a model republished
// unchanged) deduplicate to one copy. Thread-safe: reads take a shared lock,
// inserts an exclusive one, so parallel node training can resolve parent
// payloads concurrently.
#pragma once

#include <deque>
#include <unordered_map>

#include "nn/params.hpp"
#include "support/sha256.hpp"
#include "support/sync.hpp"
#include "tangle/transaction.hpp"

namespace tanglefl::tangle {

class ModelStore {
 public:
  /// Inserts (or deduplicates) a payload; returns its handle and hash.
  struct AddResult {
    PayloadId id = 0;
    Sha256Digest hash{};
    bool deduplicated = false;
  };
  AddResult add(nn::ParamVector params);

  /// Payload lookup. The returned reference stays valid for the store's
  /// lifetime (payloads are immutable once inserted).
  const nn::ParamVector& get(PayloadId id) const;

  /// Hash recorded for a payload at insertion.
  const Sha256Digest& hash_of(PayloadId id) const;

  std::size_t size() const;

  /// Total floats stored (diagnostic for dedup effectiveness; released
  /// payloads contribute nothing).
  std::size_t total_parameters() const;

  static Sha256Digest hash_params(std::span<const float> params);

  /// Garbage collection for milestone pruning (tangle/milestones.hpp):
  /// drops a payload's parameters while keeping its id slot and hash, so
  /// frozen transaction headers stay verifiable. The id leaves the dedup
  /// index — re-adding identical params later yields a fresh id. get() on
  /// a released payload throws std::logic_error (a released payload is
  /// referenced only below the prune frontier, which no consumer reads).
  void release(PayloadId id);
  bool is_released(PayloadId id) const;

  /// Appends a released (parameters-free) entry carrying only its hash —
  /// the deserialization path for dumps of pruned ledgers.
  PayloadId add_released(const Sha256Digest& hash);

  /// Binary round trip of all payloads (ids are preserved, so transaction
  /// payload handles stay valid across save/load). The store is not
  /// movable (it owns a mutex), so deserialization fills an existing empty
  /// instance. The current format carries a per-entry liveness flag;
  /// deserialize_into_v1 reads the flag-less legacy format.
  void serialize(ByteWriter& writer) const;
  static void deserialize_into(ByteReader& reader, ModelStore& store);
  static void deserialize_into_v1(ByteReader& reader, ModelStore& store);

 private:
  struct Entry {
    nn::ParamVector params;
    Sha256Digest hash{};
    bool released = false;
  };

  mutable SharedMutex mutex_;
  // Deque, not vector: get()/hash_of() hand out references that must stay
  // valid while concurrent add() calls grow the store. A vector would
  // reallocate and dangle them (ThreadSanitizer catches exactly this under
  // tests/test_concurrency_stress.cpp); deque growth never moves existing
  // entries. Handing out those references is the one sanctioned escape of
  // guarded state: entries are append-only and immutable once inserted.
  std::deque<Entry> entries_ TANGLEFL_GUARDED_BY(mutex_);
  // hex hash -> id
  std::unordered_map<std::string, PayloadId> by_hash_
      TANGLEFL_GUARDED_BY(mutex_);
};

}  // namespace tanglefl::tangle
