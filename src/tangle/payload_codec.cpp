#include "tangle/payload_codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/privacy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/serialize.hpp"

namespace tanglefl::tangle {
namespace {

// ---------------------------------------------------------------------------
// Adaptive binary range coder (the LZMA bit coder: 11-bit probabilities,
// shift-4 adaptation, carry propagation through a pending-0xFF cache). All
// state is integer, so encode/decode are bit-deterministic everywhere.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kTopValue = 1u << 24;
constexpr std::uint16_t kProbInit = 1024;  // p(bit=0) = 1/2 in 11-bit scale
constexpr unsigned kAdaptShift = 4;

class RangeEncoder {
 public:
  explicit RangeEncoder(std::vector<std::uint8_t>& out) : out_(out) {}

  void encode_bit(std::uint16_t& prob, unsigned bit) {
    const std::uint32_t bound = (range_ >> 11) * prob;
    if (bit == 0) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(prob + ((2048 - prob) >> kAdaptShift));
    } else {
      low_ += bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kAdaptShift));
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      shift_low();
    }
  }

  /// Flushes the remaining low bits; call exactly once.
  void finish() {
    for (int i = 0; i < 5; ++i) shift_low();
  }

 private:
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      std::uint8_t carry_byte = cache_;
      do {
        out_.push_back(
            static_cast<std::uint8_t>(carry_byte + (low_ >> 32)));
        carry_byte = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFu) << 8;
  }

  std::vector<std::uint8_t>& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const std::uint8_t> data) : data_(data) {
    // The encoder's cache discipline emits one leading zero byte; consume
    // it together with the first four payload bytes.
    for (int i = 0; i < 5; ++i) code_ = (code_ << 8) | next_byte();
  }

  unsigned decode_bit(std::uint16_t& prob) {
    const std::uint32_t bound = (range_ >> 11) * prob;
    unsigned bit = 0;
    if (code_ < bound) {
      range_ = bound;
      prob = static_cast<std::uint16_t>(prob + ((2048 - prob) >> kAdaptShift));
    } else {
      code_ -= bound;
      range_ -= bound;
      prob = static_cast<std::uint16_t>(prob - (prob >> kAdaptShift));
      bit = 1;
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

 private:
  /// Reads past the buffer as zero: the encoder's flush already emitted
  /// every byte the decoder can need, and the output length is validated
  /// by the caller against the recorded plain size.
  std::uint8_t next_byte() {
    return offset_ < data_.size() ? data_[offset_++] : 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
};

/// One adaptive byte model: a 256-node binary tree of bit probabilities
/// (node index doubles as the bits-so-far context within the byte).
struct ByteTree {
  std::array<std::uint16_t, 256> probs;
  ByteTree() { probs.fill(kProbInit); }
};

void encode_byte(RangeEncoder& encoder, ByteTree& tree, std::uint8_t byte) {
  unsigned context = 1;
  for (int bit_index = 7; bit_index >= 0; --bit_index) {
    const unsigned bit = (byte >> bit_index) & 1u;
    encoder.encode_bit(tree.probs[context], bit);
    context = (context << 1) | bit;
  }
}

std::uint8_t decode_byte(RangeDecoder& decoder, ByteTree& tree) {
  unsigned context = 1;
  for (int bit_index = 0; bit_index < 8; ++bit_index) {
    context = (context << 1) | decoder.decode_bit(tree.probs[context]);
  }
  return static_cast<std::uint8_t>(context & 0xFFu);
}

/// Order-0 adaptive compression with positional contexts: byte i is coded
/// under model i % period (period 1 for opaque stage bytes).
std::vector<std::uint8_t> entropy_compress(std::span<const std::uint8_t> data,
                                           std::size_t period) {
  std::vector<ByteTree> trees(period);
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 2 + 16);
  RangeEncoder encoder(out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    encode_byte(encoder, trees[i % period], data[i]);
  }
  encoder.finish();
  return out;
}

std::vector<std::uint8_t> entropy_decompress(
    std::span<const std::uint8_t> data, std::size_t plain_size,
    std::size_t period) {
  std::vector<ByteTree> trees(period);
  std::vector<std::uint8_t> out(plain_size);
  RangeDecoder decoder(data);
  for (std::size_t i = 0; i < plain_size; ++i) {
    out[i] = decode_byte(decoder, trees[i % period]);
  }
  return out;
}

std::uint32_t float_bits(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

float bits_float(std::uint32_t bits) {
  float value = 0.0f;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

// Dense-word model: each 32-bit word is coded most-significant byte first
// under the context (byte position, magnitude class of the bytes already
// coded for this word: all 0x00 / all 0xFF / mixed, and the magnitude
// band of the base value at this position). A small XOR delta is a run of
// 0x00 bytes followed by a short significant tail (and a raw negative
// float a 0xFF-led run), so the within-word class gives the lower-byte
// models sharply different distributions per update magnitude, while the
// base band separates per-layer scales: big weights see big absolute
// updates, biases and small weights see small ones.
constexpr std::size_t kWordClasses = 3;      // zeros, ffs, mixed
constexpr std::size_t kExponentBuckets = 4;  // base |value| magnitude bands

std::size_t word_context(std::size_t byte_position, std::size_t cls,
                         std::size_t exponent_bucket) {
  return (byte_position * kWordClasses + cls) * kExponentBuckets +
         exponent_bucket;
}

std::size_t next_class(std::size_t cls, std::uint8_t byte, bool first) {
  if (first) {
    if (byte == 0x00) return 0;
    return byte == 0xFF ? 1 : 2;
  }
  if (cls == 0 && byte == 0x00) return 0;
  if (cls == 1 && byte == 0xFF) return 1;
  return 2;
}

/// Magnitude band of the base value at a word's position — side
/// information both sides share, so it costs no bits. The bands track the
/// typical per-layer weight scales of the models in nn/model_zoo.hpp.
std::size_t exponent_bucket_of(float base_value) {
  const std::uint32_t exponent = (float_bits(base_value) >> 23) & 0xFFu;
  if (exponent >= 127) return 3;  // |w| >= 1
  if (exponent >= 124) return 2;  // [0.125, 1)
  if (exponent >= 120) return 1;  // [~0.008, 0.125)
  return 0;                       // smaller (or zero)
}

std::vector<std::uint8_t> entropy_compress_words(
    std::span<const std::uint8_t> data, std::span<const float> base) {
  std::vector<ByteTree> trees(4 * kWordClasses * kExponentBuckets);
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 2 + 16);
  RangeEncoder encoder(out);
  for (std::size_t word = 0; word + 4 <= data.size(); word += 4) {
    const std::size_t bucket =
        base.empty() ? 0 : exponent_bucket_of(base[word / 4]);
    std::size_t cls = 0;
    for (std::size_t b = 4; b-- > 0;) {
      const std::uint8_t byte = data[word + b];
      encode_byte(encoder, trees[word_context(b, cls, bucket)], byte);
      cls = next_class(cls, byte, /*first=*/b == 3);
    }
  }
  encoder.finish();
  return out;
}

std::vector<std::uint8_t> entropy_decompress_words(
    std::span<const std::uint8_t> data, std::size_t plain_size,
    std::span<const float> base) {
  std::vector<ByteTree> trees(4 * kWordClasses * kExponentBuckets);
  std::vector<std::uint8_t> out(plain_size);
  RangeDecoder decoder(data);
  for (std::size_t word = 0; word + 4 <= plain_size; word += 4) {
    const std::size_t bucket =
        base.empty() ? 0 : exponent_bucket_of(base[word / 4]);
    std::size_t cls = 0;
    for (std::size_t b = 4; b-- > 0;) {
      const std::uint8_t byte =
          decode_byte(decoder, trees[word_context(b, cls, bucket)]);
      out[word + b] = byte;
      cls = next_class(cls, byte, /*first=*/b == 3);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stage plumbing
// ---------------------------------------------------------------------------

constexpr std::uint8_t kFlagDeltaUsed = 1u << 0;
constexpr std::uint8_t kFlagTopk = 1u << 1;
constexpr std::uint8_t kFlagQuantize = 1u << 2;
constexpr std::uint8_t kFlagEntropy = 1u << 3;
// Dense lossless best-of: the raw word stream compressed better than the
// XOR-delta stream, so the decoder must skip the base entirely.
constexpr std::uint8_t kFlagDenseRaw = 1u << 4;

void write_varint(ByteWriter& writer, std::uint64_t value) {
  while (value >= 0x80) {
    writer.write_u8(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  writer.write_u8(static_cast<std::uint8_t>(value));
}

std::uint64_t read_varint(ByteReader& reader) {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = reader.read_u8();
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  throw SerializeError("payload codec: varint overruns 64 bits");
}

/// Little-endian byte image of the dense lossless words: XOR'd float bit
/// patterns against the base (sign, exponent, and agreeing high-mantissa
/// bits of a nearby float cancel to zero — exactly the structure the
/// word-context entropy model keys on), or the raw bit patterns when no
/// base applies. Bit operations only, so the path is lossless for every
/// pattern including NaNs.
std::vector<std::uint8_t> dense_words(std::span<const float> params,
                                      std::span<const float> base) {
  std::vector<std::uint8_t> bytes(params.size() * sizeof(std::uint32_t));
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::uint32_t word = float_bits(params[i]);
    if (!base.empty()) word ^= float_bits(base[i]);
    std::memcpy(bytes.data() + i * 4, &word, 4);
  }
  return bytes;
}

struct TopkSelection {
  std::vector<std::uint64_t> indices;  // ascending
  std::vector<float> values;           // final published values, parallel
};

/// Keeps the (at most) k coordinates whose final value differs most from
/// the base, skipping exact matches entirely: the decoder reproduces those
/// from the base, so re-encoding a decoded payload keeps its exact value.
TopkSelection select_topk(std::span<const float> params,
                          std::span<const float> base, double fraction) {
  const std::size_t n = params.size();
  const auto want = static_cast<std::size_t>(
      std::max<long>(1, std::lround(fraction * static_cast<double>(n))));
  std::vector<std::uint64_t> candidates;
  candidates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float based = base.empty() ? 0.0f : base[i];
    if (params[i] != based) candidates.push_back(i);
  }
  const std::size_t keep = std::min(want, candidates.size());
  const auto magnitude = [&](std::uint64_t i) {
    const float based = base.empty() ? 0.0f : base[i];
    return std::abs(static_cast<double>(params[i]) - based);
  };
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end(), [&](std::uint64_t a, std::uint64_t b) {
                      const double ma = magnitude(a);
                      const double mb = magnitude(b);
                      if (ma != mb) return ma > mb;
                      return a < b;  // deterministic tie-break
                    });
  candidates.resize(keep);
  std::sort(candidates.begin(), candidates.end());
  TopkSelection selection;
  selection.indices = std::move(candidates);
  selection.values.reserve(keep);
  for (const std::uint64_t i : selection.indices) {
    selection.values.push_back(params[i]);
  }
  return selection;
}

obs::Counter& raw_bytes_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("ledger.codec.raw_bytes");
  return counter;
}

obs::Counter& encoded_bytes_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("ledger.codec.encoded_bytes");
  return counter;
}

obs::Counter& payloads_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("ledger.codec.payloads");
  return counter;
}

obs::Histogram& encode_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "ledger.codec.encode_us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

obs::Histogram& decode_timing() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "ledger.codec.decode_us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

}  // namespace

EncodedPayload PayloadCodec::encode(std::span<const float> params,
                                    std::span<const float> base) const {
  obs::TraceScope span("ledger.codec.encode", &encode_timing());
  if (!base.empty() && base.size() != params.size()) {
    throw std::invalid_argument(
        "PayloadCodec::encode: base/params size mismatch");
  }
  const std::span<const float> delta_base =
      config_.delta ? base : std::span<const float>{};
  std::uint8_t flags = 0;
  if (!delta_base.empty()) flags |= kFlagDeltaUsed;
  if (config_.topk) flags |= kFlagTopk;
  if (config_.quantize) flags |= kFlagQuantize;
  if (config_.entropy) flags |= kFlagEntropy;

  // Serialize the stage representation into `inner` (or, for the dense
  // lossless form, straight into `dense_plain`).
  ByteWriter inner;
  std::vector<std::uint8_t> dense_plain;
  if (config_.topk) {
    const TopkSelection selection =
        select_topk(params, delta_base, config_.topk_fraction);
    write_varint(inner, selection.indices.size());
    std::uint64_t previous = 0;
    for (std::size_t i = 0; i < selection.indices.size(); ++i) {
      write_varint(inner, selection.indices[i] - previous);
      previous = selection.indices[i];
    }
    if (config_.quantize) {
      const nn::QuantizedParams quantized =
          nn::quantize_params(selection.values);
      inner.write_f32(quantized.scale);
      for (const std::int8_t v : quantized.values) {
        inner.write_u8(static_cast<std::uint8_t>(v));
      }
    } else {
      for (const float v : selection.values) inner.write_f32(v);
    }
  } else if (config_.quantize) {
    // Dense 8-bit quantization of the update (or of the raw payload when
    // no base resolved).
    nn::ParamVector update(params.begin(), params.end());
    if (!delta_base.empty()) {
      for (std::size_t i = 0; i < update.size(); ++i) {
        update[i] -= delta_base[i];
      }
    }
    const nn::QuantizedParams quantized = nn::quantize_params(update);
    inner.write_f32(quantized.scale);
    for (const std::int8_t v : quantized.values) {
      inner.write_u8(static_cast<std::uint8_t>(v));
    }
  } else {
    // Dense lossless words; under entropy coding, pick the smaller of the
    // XOR-delta and raw streams (a payload unrelated to its parents — e.g.
    // a poisoned publish — compresses better without the base).
    std::vector<std::uint8_t> words = dense_words(params, delta_base);
    if (config_.entropy && !delta_base.empty()) {
      std::vector<std::uint8_t> raw_words =
          dense_words(params, std::span<const float>{});
      const std::vector<std::uint8_t> delta_coded =
          entropy_compress_words(words, delta_base);
      const std::vector<std::uint8_t> raw_coded =
          entropy_compress_words(raw_words, std::span<const float>{});
      EncodedPayload encoded;
      encoded.param_count = params.size();
      ByteWriter out;
      if (raw_coded.size() < delta_coded.size()) {
        flags = static_cast<std::uint8_t>((flags & ~kFlagDeltaUsed) |
                                          kFlagDenseRaw);
        out.write_u8(flags);
        write_varint(out, params.size());
        write_varint(out, raw_words.size());
        out.write_bytes(raw_coded);
      } else {
        out.write_u8(flags);
        write_varint(out, params.size());
        write_varint(out, words.size());
        out.write_bytes(delta_coded);
      }
      encoded.bytes = out.take();
      raw_bytes_counter().add(encoded.raw_bytes());
      encoded_bytes_counter().add(encoded.bytes.size());
      payloads_counter().increment();
      return encoded;
    }
    dense_plain = std::move(words);
  }

  EncodedPayload encoded;
  encoded.param_count = params.size();
  ByteWriter out;
  out.write_u8(flags);
  write_varint(out, params.size());
  const bool dense = !dense_plain.empty();
  const std::vector<std::uint8_t> plain =
      dense ? std::move(dense_plain) : inner.take();
  if (config_.entropy) {
    write_varint(out, plain.size());
    out.write_bytes(dense ? entropy_compress_words(plain, delta_base)
                          : entropy_compress(plain, 1));
  } else {
    out.write_bytes(plain);
  }
  encoded.bytes = out.take();
  raw_bytes_counter().add(encoded.raw_bytes());
  encoded_bytes_counter().add(encoded.bytes.size());
  payloads_counter().increment();
  return encoded;
}

nn::ParamVector PayloadCodec::decode(const EncodedPayload& encoded,
                                     std::span<const float> base) const {
  obs::TraceScope span("ledger.codec.decode", &decode_timing());
  ByteReader reader(encoded.bytes);
  const std::uint8_t flags = reader.read_u8();
  const std::uint64_t count = read_varint(reader);
  if (count != encoded.param_count) {
    throw SerializeError("payload codec: parameter count mismatch");
  }
  const bool delta_used = (flags & kFlagDeltaUsed) != 0;
  if (delta_used && base.size() != count) {
    throw SerializeError("payload codec: delta base unavailable or mismatched");
  }

  std::vector<std::uint8_t> plain;
  if ((flags & kFlagEntropy) != 0) {
    const std::uint64_t plain_size = read_varint(reader);
    const bool dense = (flags & (kFlagTopk | kFlagQuantize)) == 0;
    const std::span<const float> dense_base =
        delta_used ? base : std::span<const float>{};
    plain = dense ? entropy_decompress_words(reader.read_bytes(), plain_size,
                                             dense_base)
                  : entropy_decompress(reader.read_bytes(), plain_size, 1);
  } else {
    plain = reader.read_bytes();
  }
  if (!reader.exhausted()) {
    throw SerializeError("payload codec: trailing bytes");
  }
  ByteReader body(plain);

  nn::ParamVector out(count);
  if ((flags & kFlagTopk) != 0) {
    // Start from the base (or zero) and scatter the kept final values.
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = delta_used ? base[i] : 0.0f;
    }
    const std::uint64_t keep = read_varint(body);
    if (keep > count) {
      throw SerializeError("payload codec: topk count exceeds payload");
    }
    std::vector<std::uint64_t> indices(keep);
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < keep; ++i) {
      previous += read_varint(body);
      if (previous >= count) {
        throw SerializeError("payload codec: topk index out of range");
      }
      indices[i] = previous;
    }
    if ((flags & kFlagQuantize) != 0) {
      nn::QuantizedParams quantized;
      quantized.scale = body.read_f32();
      quantized.values.resize(keep);
      for (std::uint64_t i = 0; i < keep; ++i) {
        quantized.values[i] = static_cast<std::int8_t>(body.read_u8());
      }
      const nn::ParamVector values = nn::dequantize_params(quantized);
      for (std::uint64_t i = 0; i < keep; ++i) out[indices[i]] = values[i];
    } else {
      for (std::uint64_t i = 0; i < keep; ++i) {
        out[indices[i]] = body.read_f32();
      }
    }
  } else if ((flags & kFlagQuantize) != 0) {
    nn::QuantizedParams quantized;
    quantized.scale = body.read_f32();
    quantized.values.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      quantized.values[i] = static_cast<std::int8_t>(body.read_u8());
    }
    const nn::ParamVector update = nn::dequantize_params(quantized);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = delta_used ? base[i] + update[i] : update[i];
    }
  } else {
    if (plain.size() != count * sizeof(std::uint32_t)) {
      throw SerializeError("payload codec: dense payload size mismatch");
    }
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t word = 0;
      std::memcpy(&word, plain.data() + i * 4, 4);
      if (delta_used) word ^= float_bits(base[i]);
      out[i] = bits_float(word);
    }
    return out;
  }
  if (!body.exhausted()) {
    throw SerializeError("payload codec: trailing stage bytes");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

PayloadCodecConfig parse_codec_spec(const std::string& spec) {
  PayloadCodecConfig config;
  if (spec.empty() || spec == "off") return config;
  if (spec == "default") {
    config.delta = true;
    config.entropy = true;
    config.chunk = true;
    return config;
  }
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string token = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (token == "delta") {
      config.delta = true;
    } else if (token == "quantize") {
      config.quantize = true;
    } else if (token == "entropy") {
      config.entropy = true;
    } else if (token == "chunk") {
      config.chunk = true;
    } else if (token.rfind("topk", 0) == 0) {
      config.topk = true;
      if (token.size() > 4) {
        if (token[4] != ':') {
          throw std::invalid_argument("payload codec spec: bad stage '" +
                                      token + "'");
        }
        try {
          config.topk_fraction = std::stod(token.substr(5));
        } catch (const std::exception&) {
          throw std::invalid_argument(
              "payload codec spec: bad topk fraction in '" + token + "'");
        }
        if (!(config.topk_fraction > 0.0) || config.topk_fraction > 1.0) {
          throw std::invalid_argument(
              "payload codec spec: topk fraction must be in (0, 1]");
        }
      }
    } else {
      throw std::invalid_argument("payload codec spec: unknown stage '" +
                                  token + "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return config;
}

std::string codec_spec_string(const PayloadCodecConfig& config) {
  if (!config.enabled()) return "off";
  std::string spec;
  const auto append = [&](const std::string& stage) {
    if (!spec.empty()) spec += ',';
    spec += stage;
  };
  if (config.delta) append("delta");
  if (config.topk) {
    append("topk:" + std::to_string(config.topk_fraction));
  }
  if (config.quantize) append("quantize");
  if (config.entropy) append("entropy");
  if (config.chunk) append("chunk");
  return spec;
}

// ---------------------------------------------------------------------------
// Content-defined chunking
// ---------------------------------------------------------------------------

namespace {

/// Deterministic pseudo-random gear table (splitmix64 on a fixed seed):
/// the rolling hash is h = (h << 1) + gear[byte], an implicit 64-byte
/// sliding window.
const std::array<std::uint64_t, 256>& gear_table() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (auto& entry : t) {
      state += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      entry = z ^ (z >> 31);
    }
    return t;
  }();
  return table;
}

}  // namespace

std::vector<std::size_t> chunk_boundaries(std::span<const std::uint8_t> data,
                                          const ChunkParams& params) {
  const auto& gear = gear_table();
  const std::uint64_t mask = (std::uint64_t{1} << params.mask_bits) - 1;
  const std::size_t min_bytes = std::max<std::size_t>(1, params.min_bytes);
  const std::size_t max_bytes = std::max(params.max_bytes, min_bytes);
  std::vector<std::size_t> ends;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t limit = std::min(pos + max_bytes, data.size());
    std::size_t cut = limit;
    std::uint64_t hash = 0;
    std::size_t i = pos;
    for (const std::size_t skip = std::min(pos + min_bytes, data.size());
         i < skip; ++i) {
      hash = (hash << 1) + gear[data[i]];
    }
    for (; i < limit; ++i) {
      hash = (hash << 1) + gear[data[i]];
      if ((hash & mask) == 0) {
        cut = i + 1;
        break;
      }
    }
    ends.push_back(cut);
    pos = cut;
  }
  return ends;
}

// ---------------------------------------------------------------------------
// Publish-path pipeline
// ---------------------------------------------------------------------------

nn::ParamVector PayloadPipeline::process(nn::ParamVector params,
                                         std::span<const TxIndex> parents,
                                         const Tangle& tangle,
                                         const ModelStore& store) const {
  if (!active()) return params;
  nn::ParamVector base;
  if (codec_.config().delta) {
    // The delta predictor is the average of the approved parents' payloads
    // (duplicates included) — exactly the base an honest node trained
    // from, and recomputable by any decoder from the transaction header.
    // A released (pruned) parent payload downgrades to "no base".
    std::vector<const nn::ParamVector*> parent_params;
    parent_params.reserve(parents.size());
    bool resolvable = !parents.empty();
    for (const TxIndex parent : parents) {
      const PayloadId payload = tangle.transaction(parent).payload;
      if (store.is_released(payload)) {
        resolvable = false;
        break;
      }
      const nn::ParamVector& value = store.get(payload);
      if (value.size() != params.size()) {
        resolvable = false;
        break;
      }
      parent_params.push_back(&value);
    }
    if (resolvable) base = nn::average_params(parent_params);
  }
  const EncodedPayload encoded = codec_.encode(params, base);
  nn::ParamVector decoded = codec_.decode(encoded, base);
  if (!codec_.config().lossy() &&
      !std::equal(decoded.begin(), decoded.end(), params.begin(), params.end(),
                  [](float a, float b) {
                    return float_bits(a) == float_bits(b);
                  })) {
    throw std::logic_error(
        "PayloadPipeline: lossless codec round trip is not bit-exact");
  }
  return decoded;
}

}  // namespace tanglefl::tangle
