// Graphviz DOT rendering of a tangle view, for inspecting consensus
// structure (genesis / consensus / tip coloring follows Fig. 2).
#pragma once

#include <string>

#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

struct DotOptions {
  bool label_rounds = true;        // annotate nodes with their round
  bool color_consensus = true;     // shade transactions approved by all tips
  std::string graph_name = "tangle";
};

/// Renders `view` as a DOT digraph. Edges point from approver to approved,
/// matching Fig. 2.
std::string to_dot(const TangleView& view, const DotOptions& options = {});

}  // namespace tanglefl::tangle
