// Pluggable payload codec for the publish path (the paper's Section V names
// model compression as the key future-work item; DAG-AFL attacks the same
// DAG-FL communication-efficiency problem).
//
// A payload travels the wire as a pipeline of independently toggleable
// stages:
//
//   * delta     — predict the payload from the average of its approved
//                 parents' payloads (the exact base an honest node trained
//                 from, recomputable by any decoder that can resolve the
//                 approved transaction ids). Lossless: the dense form works
//                 on XOR'd float bit patterns, never on rounded arithmetic.
//   * topk      — magnitude sparsification of the update: keep the k
//                 coordinates that moved furthest from the base, packed as
//                 gap-coded indices plus their final values. Lossy.
//   * quantize  — 8-bit symmetric quantization (the nn/privacy.hpp
//                 quantizer promoted into a codec stage). Lossy.
//   * entropy   — adaptive binary range coder (LZMA-style bit model) over
//                 the serialized stage output, with byte-plane contexts for
//                 dense float words. Lossless.
//
// The *published* payload is always decode(encode(params)): with only
// lossless stages on, that is bitwise `params`; with lossy stages on, the
// canonical decoded form is what lands in the ModelStore, so tip selection,
// eval-engine content keys, and confidence math operate on exactly the
// bytes any decoder would reconstruct. encode/decode are pure
// integer-deterministic functions — results never depend on thread counts.
//
// Chunk-level dedup (the `chunk` toggle) lives in ModelStore: payload bytes
// are split at content-defined boundaries (gear rolling hash) and stored in
// a SHA-256-keyed refcounted chunk table, so near-identical payloads share
// storage beyond whole-payload dedup. chunk_boundaries() below is the
// shared cutter.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/params.hpp"
#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

struct PayloadCodecConfig {
  bool delta = false;
  bool topk = false;
  // Fraction of coordinates kept by the topk stage (of the full parameter
  // count, at least one).
  double topk_fraction = 0.01;
  bool quantize = false;
  bool entropy = false;
  // ModelStore content-defined chunk dedup (storage tier, not a wire
  // stage; see ModelStore::configure_chunking).
  bool chunk = false;

  /// Any wire stage on (the chunk toggle alone does not change payloads).
  bool any_stage() const noexcept {
    return delta || topk || quantize || entropy;
  }
  bool lossy() const noexcept { return topk || quantize; }
  bool enabled() const noexcept { return any_stage() || chunk; }
};

/// Parses a --payload-codec spec: "off", "default" (the lossless
/// delta+entropy+chunk preset), or a comma list of stage names among
/// {delta, topk[:fraction], quantize, entropy, chunk}. Throws
/// std::invalid_argument on unknown stages or malformed fractions.
PayloadCodecConfig parse_codec_spec(const std::string& spec);

/// Canonical spec string for manifests ("off" when no toggle is set).
std::string codec_spec_string(const PayloadCodecConfig& config);

/// One encoded payload. The byte stream is self-describing up to the
/// decoder knowing the same base the encoder used (resolved via the
/// approved-transaction ids carried by the transaction header).
struct EncodedPayload {
  std::vector<std::uint8_t> bytes;
  std::size_t param_count = 0;

  std::size_t raw_bytes() const noexcept {
    return param_count * sizeof(float);
  }
};

class PayloadCodec {
 public:
  explicit PayloadCodec(PayloadCodecConfig config) : config_(config) {}

  const PayloadCodecConfig& config() const noexcept { return config_; }

  /// Encodes `params`. `base` is the delta predictor (the parent-payload
  /// average); pass an empty span when no base is resolvable — the delta
  /// stage then encodes against zero. A non-empty base must match
  /// `params.size()`.
  EncodedPayload encode(std::span<const float> params,
                        std::span<const float> base) const;

  /// Exact inverse of encode() given the same base. Bit-deterministic:
  /// equal inputs give equal outputs on every platform and thread count.
  nn::ParamVector decode(const EncodedPayload& encoded,
                         std::span<const float> base) const;

 private:
  PayloadCodecConfig config_;
};

/// Content-defined chunk boundaries over `data` (gear rolling hash): a cut
/// lands where the hash masks to zero, clamped to [min_bytes, max_bytes].
/// Returns the exclusive end offset of every chunk (last entry ==
/// data.size(); empty input yields no chunks). Purely content-driven, so an
/// unchanged region of bytes produces the same chunks whatever surrounds it.
/// ChunkParams itself lives in tangle/model_store.hpp (the consumer).
std::vector<std::size_t> chunk_boundaries(std::span<const std::uint8_t> data,
                                          const ChunkParams& params);

/// Publish-path driver shared by the three engines: resolves the delta base
/// from the approved parents (average of their payloads — exactly the base
/// an honest node trained from), encodes, records the
/// ledger.codec.{raw_bytes,encoded_bytes} counters and encode/decode
/// timings, and returns the canonical decoded payload to store. With no
/// wire stage configured this is a zero-cost pass-through.
class PayloadPipeline {
 public:
  explicit PayloadPipeline(const PayloadCodecConfig& config)
      : codec_(config) {}

  bool active() const noexcept { return codec_.config().any_stage(); }

  /// `parents` are the approved transaction indices (into `tangle`); any
  /// released parent payload downgrades the delta base to "none" so decode
  /// never depends on pruned history.
  nn::ParamVector process(nn::ParamVector params,
                          std::span<const TxIndex> parents,
                          const Tangle& tangle, const ModelStore& store) const;

 private:
  PayloadCodec codec_;
};

}  // namespace tanglefl::tangle
