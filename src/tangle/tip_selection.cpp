#include "tangle/tip_selection.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::tangle {
namespace {

// Walk statistics the paper's analyses (Kuśmierz et al., Popov et al.) are
// framed in: how many walks ran, how long each was, and how often a step had
// several approvers to bias between. Pure counts — deterministic for a
// given seed and config.
obs::Counter& walk_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.count");
  return counter;
}

obs::Histogram& walk_length_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.tip_walk.length", obs::BucketLayout::exponential(1.0, 2.0, 14));
  return hist;
}

obs::Counter& walk_branch_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.branch_steps");
  return counter;
}

obs::Counter& uniform_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.uniform_count");
  return counter;
}

/// Core MCMC walk, shared by the allocation-free cached path and the
/// direct TangleView path. `approvers_of(index)` must yield the in-view
/// approvers of `index` in ascending order — both providers do, so the two
/// paths consume the RNG identically and return identical tips.
template <typename ApproversFn>
TxIndex walk_to_tip(TxIndex start, std::span<const std::uint32_t> future_cones,
                    ApproversFn&& approvers_of, Rng& rng,
                    const TipSelectionConfig& config) {
  walk_counter().increment();
  // The prune frontier when milestone pruning is active (the milestone is
  // in the past cone of every tip, so rooting here reaches the same tip
  // set); index 0 == Tangle::genesis() otherwise.
  TxIndex current = start;
  std::vector<double> weights;
  std::uint64_t steps = 0;
  std::uint64_t branch_steps = 0;
  for (;;) {
    const auto approvers = approvers_of(current);
    if (approvers.empty()) {
      // reached a tip
      walk_length_histogram().record(static_cast<double>(steps));
      walk_branch_counter().add(branch_steps);
      return current;
    }
    ++steps;
    if (approvers.size() == 1) {
      current = approvers.front();
      continue;
    }
    ++branch_steps;
    // exp(alpha * (w - w_max)) keeps the weights in (0, 1] for stability.
    std::uint32_t max_weight = 0;
    for (const TxIndex a : approvers) {
      max_weight = std::max(max_weight, future_cones[a]);
    }
    weights.clear();
    for (const TxIndex a : approvers) {
      weights.push_back(std::exp(
          config.alpha * (static_cast<double>(future_cones[a]) -
                          static_cast<double>(max_weight))));
    }
    current = approvers[rng.weighted_choice(weights)];
  }
}

/// Uniform draw from a precomputed tip set (URTS hot path).
template <typename Tips>
TxIndex uniform_from(const Tips& tips, Rng& rng) {
  uniform_counter().increment();
  if (tips.empty()) return 0;  // genesis
  return tips[rng.uniform_index(tips.size())];
}

}  // namespace

TxIndex random_walk_tip(const TangleView& view,
                        std::span<const std::uint32_t> future_cones, Rng& rng,
                        const TipSelectionConfig& config) {
  return walk_to_tip(
      view.tangle().prune_floor(), future_cones,
      [&view](TxIndex i) { return view.approvers(i); }, rng, config);
}

TxIndex random_walk_tip(const ViewCacheEntry& cones, Rng& rng,
                        const TipSelectionConfig& config) {
  return walk_to_tip(
      cones.root(), cones.future_cone_sizes(),
      [&cones](TxIndex i) { return cones.approvers(i); }, rng, config);
}

TxIndex uniform_random_tip(const TangleView& view, Rng& rng) {
  return uniform_from(view.tips(), rng);
}

std::vector<TxIndex> select_tips(const TangleView& view, std::size_t count,
                                 Rng& rng, const TipSelectionConfig& config) {
  std::vector<TxIndex> tips;
  tips.reserve(count);
  if (config.method == TipSelectionMethod::kUniform) {
    // One O(n * deg) tip scan per call, not per draw.
    const std::vector<TxIndex> tip_set = view.tips();
    for (std::size_t i = 0; i < count; ++i) {
      tips.push_back(uniform_from(tip_set, rng));
    }
    return tips;
  }
  const std::vector<std::uint32_t> future_cones = view.future_cone_sizes();
  for (std::size_t i = 0; i < count; ++i) {
    tips.push_back(random_walk_tip(view, future_cones, rng, config));
  }
  return tips;
}

std::vector<TxIndex> select_tips(const ViewCacheEntry& cones,
                                 std::size_t count, Rng& rng,
                                 const TipSelectionConfig& config) {
  std::vector<TxIndex> tips;
  tips.reserve(count);
  if (config.method == TipSelectionMethod::kUniform) {
    for (std::size_t i = 0; i < count; ++i) {
      tips.push_back(uniform_from(cones.tips(), rng));
    }
    return tips;
  }
  for (std::size_t i = 0; i < count; ++i) {
    tips.push_back(random_walk_tip(cones, rng, config));
  }
  return tips;
}

}  // namespace tanglefl::tangle
