#include "tangle/tip_selection.hpp"

#include <algorithm>
#include <cmath>

namespace tanglefl::tangle {

TxIndex random_walk_tip(const TangleView& view,
                        std::span<const std::uint32_t> future_cones, Rng& rng,
                        const TipSelectionConfig& config) {
  TxIndex current = view.tangle().genesis();
  std::vector<double> weights;
  for (;;) {
    const std::vector<TxIndex> approvers = view.approvers(current);
    if (approvers.empty()) return current;  // reached a tip
    if (approvers.size() == 1) {
      current = approvers.front();
      continue;
    }
    // exp(alpha * (w - w_max)) keeps the weights in (0, 1] for stability.
    std::uint32_t max_weight = 0;
    for (const TxIndex a : approvers) {
      max_weight = std::max(max_weight, future_cones[a]);
    }
    weights.clear();
    for (const TxIndex a : approvers) {
      weights.push_back(std::exp(
          config.alpha * (static_cast<double>(future_cones[a]) -
                          static_cast<double>(max_weight))));
    }
    current = approvers[rng.weighted_choice(weights)];
  }
}

TxIndex uniform_random_tip(const TangleView& view, Rng& rng) {
  const std::vector<TxIndex> tips = view.tips();
  if (tips.empty()) return view.tangle().genesis();
  return tips[rng.uniform_index(tips.size())];
}

std::vector<TxIndex> select_tips(const TangleView& view, std::size_t count,
                                 Rng& rng, const TipSelectionConfig& config) {
  std::vector<TxIndex> tips;
  tips.reserve(count);
  if (config.method == TipSelectionMethod::kUniform) {
    for (std::size_t i = 0; i < count; ++i) {
      tips.push_back(uniform_random_tip(view, rng));
    }
    return tips;
  }
  const std::vector<std::uint32_t> future_cones = view.future_cone_sizes();
  for (std::size_t i = 0; i < count; ++i) {
    tips.push_back(random_walk_tip(view, future_cones, rng, config));
  }
  return tips;
}

}  // namespace tanglefl::tangle
