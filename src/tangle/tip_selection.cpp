#include "tangle/tip_selection.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace tanglefl::tangle {
namespace {

// Walk statistics the paper's analyses (Kuśmierz et al., Popov et al.) are
// framed in: how many walks ran, how long each was, and how often a step had
// several approvers to bias between. Pure counts — deterministic for a
// given seed and config.
obs::Counter& walk_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.count");
  return counter;
}

obs::Histogram& walk_length_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.tip_walk.length", obs::BucketLayout::exponential(1.0, 2.0, 14));
  return hist;
}

obs::Counter& walk_branch_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.branch_steps");
  return counter;
}

obs::Counter& uniform_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.tip_walk.uniform_count");
  return counter;
}

}  // namespace

TxIndex random_walk_tip(const TangleView& view,
                        std::span<const std::uint32_t> future_cones, Rng& rng,
                        const TipSelectionConfig& config) {
  walk_counter().increment();
  TxIndex current = view.tangle().genesis();
  std::vector<double> weights;
  std::uint64_t steps = 0;
  std::uint64_t branch_steps = 0;
  for (;;) {
    const std::vector<TxIndex> approvers = view.approvers(current);
    if (approvers.empty()) {
      // reached a tip
      walk_length_histogram().record(static_cast<double>(steps));
      walk_branch_counter().add(branch_steps);
      return current;
    }
    ++steps;
    if (approvers.size() == 1) {
      current = approvers.front();
      continue;
    }
    ++branch_steps;
    // exp(alpha * (w - w_max)) keeps the weights in (0, 1] for stability.
    std::uint32_t max_weight = 0;
    for (const TxIndex a : approvers) {
      max_weight = std::max(max_weight, future_cones[a]);
    }
    weights.clear();
    for (const TxIndex a : approvers) {
      weights.push_back(std::exp(
          config.alpha * (static_cast<double>(future_cones[a]) -
                          static_cast<double>(max_weight))));
    }
    current = approvers[rng.weighted_choice(weights)];
  }
}

TxIndex uniform_random_tip(const TangleView& view, Rng& rng) {
  uniform_counter().increment();
  const std::vector<TxIndex> tips = view.tips();
  if (tips.empty()) return view.tangle().genesis();
  return tips[rng.uniform_index(tips.size())];
}

std::vector<TxIndex> select_tips(const TangleView& view, std::size_t count,
                                 Rng& rng, const TipSelectionConfig& config) {
  std::vector<TxIndex> tips;
  tips.reserve(count);
  if (config.method == TipSelectionMethod::kUniform) {
    for (std::size_t i = 0; i < count; ++i) {
      tips.push_back(uniform_random_tip(view, rng));
    }
    return tips;
  }
  const std::vector<std::uint32_t> future_cones = view.future_cone_sizes();
  for (std::size_t i = 0; i < count; ++i) {
    tips.push_back(random_walk_tip(view, future_cones, rng, config));
  }
  return tips;
}

}  // namespace tanglefl::tangle
