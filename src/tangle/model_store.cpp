#include "tangle/model_store.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tanglefl::tangle {
namespace {

obs::Counter& add_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.add.count");
  return counter;
}

obs::Counter& dedup_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.add.deduplicated");
  return counter;
}

obs::Counter& get_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.get.count");
  return counter;
}

obs::Histogram& add_timing_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "store.add_us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

}  // namespace

Sha256Digest ModelStore::hash_params(std::span<const float> params) {
  return Sha256::hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(params.data()),
      params.size() * sizeof(float)));
}

ModelStore::AddResult ModelStore::add(nn::ParamVector params) {
  obs::TraceScope span("store.add", &add_timing_histogram());
  add_counter().increment();
  AddResult result;
  result.hash = hash_params(params);
  const std::string key = to_hex(result.hash);

  WriterLock lock(mutex_);
  if (const auto it = by_hash_.find(key); it != by_hash_.end()) {
    result.id = it->second;
    result.deduplicated = true;
    dedup_counter().increment();
    return result;
  }
  result.id = entries_.size();
  entries_.push_back({std::move(params), result.hash});
  by_hash_.emplace(key, result.id);
  return result;
}

const nn::ParamVector& ModelStore::get(PayloadId id) const {
  get_counter().increment();
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::get: unknown payload id");
  }
  return entries_[id].params;
}

const Sha256Digest& ModelStore::hash_of(PayloadId id) const {
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::hash_of: unknown payload id");
  }
  return entries_[id].hash;
}

std::size_t ModelStore::size() const {
  ReaderLock lock(mutex_);
  return entries_.size();
}

void ModelStore::serialize(ByteWriter& writer) const {
  ReaderLock lock(mutex_);
  writer.write_u64(entries_.size());
  for (const auto& entry : entries_) {
    writer.write_f32_span(entry.params);
  }
}

void ModelStore::deserialize_into(ByteReader& reader, ModelStore& store) {
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto added = store.add(reader.read_f32_vector());
    if (added.id != i) {
      // Duplicate payloads collapse on re-add; a well-formed dump never
      // contains duplicates because add() deduplicated on write.
      throw SerializeError("ModelStore: duplicate payload in dump");
    }
  }
}

std::size_t ModelStore::total_parameters() const {
  ReaderLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& entry : entries_) total += entry.params.size();
  return total;
}

}  // namespace tanglefl::tangle
