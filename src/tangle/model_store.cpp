#include "tangle/model_store.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tangle/payload_codec.hpp"

namespace tanglefl::tangle {
namespace {

obs::Counter& add_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.add.count");
  return counter;
}

obs::Counter& dedup_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.add.deduplicated");
  return counter;
}

obs::Counter& get_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.get.count");
  return counter;
}

obs::Counter& released_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.released.count");
  return counter;
}

obs::Counter& chunks_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("ledger.codec.chunks");
  return counter;
}

obs::Counter& chunk_dedup_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("ledger.codec.chunk_dedup_hits");
  return counter;
}

obs::Histogram& add_timing_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "store.add_us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

std::span<const std::uint8_t> param_bytes(std::span<const float> params) {
  return {reinterpret_cast<const std::uint8_t*>(params.data()),
          params.size() * sizeof(float)};
}

}  // namespace

Sha256Digest ModelStore::hash_params(std::span<const float> params) {
  return Sha256::hash(param_bytes(params));
}

ModelStore::AddResult ModelStore::add(nn::ParamVector params) {
  obs::TraceScope span("store.add", &add_timing_histogram());
  add_counter().increment();
  AddResult result;
  result.hash = hash_params(params);
  const std::string key = to_hex(result.hash);

  WriterLock lock(mutex_);
  if (const auto it = by_hash_.find(key); it != by_hash_.end()) {
    result.id = it->second;
    result.deduplicated = true;
    dedup_counter().increment();
    return result;
  }
  result.id = entries_.size();
  live_floats_ += params.size();
  entries_.push_back({std::move(params), result.hash, /*released=*/false, {}});
  by_hash_.emplace(key, result.id);
  if (chunking_) chunk_payload_locked(entries_.back());
  return result;
}

void ModelStore::chunk_payload_locked(Entry& entry) {
  const std::span<const std::uint8_t> bytes = param_bytes(entry.params);
  std::size_t begin = 0;
  for (const std::size_t end : chunk_boundaries(bytes, chunk_params_)) {
    const std::span<const std::uint8_t> chunk =
        bytes.subspan(begin, end - begin);
    begin = end;
    const Sha256Digest digest = Sha256::hash(chunk);
    const std::string chunk_key = to_hex(digest);
    if (const auto it = chunk_by_hash_.find(chunk_key);
        it != chunk_by_hash_.end()) {
      ++chunks_[it->second].refcount;
      entry.chunk_ids.push_back(it->second);
      chunk_dedup_counter().increment();
      continue;
    }
    std::uint32_t slot = 0;
    if (!free_chunk_slots_.empty()) {
      slot = free_chunk_slots_.back();
      free_chunk_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(chunks_.size());
      chunks_.emplace_back();
    }
    ChunkSlot& stored = chunks_[slot];
    stored.bytes.assign(chunk.begin(), chunk.end());
    stored.hash = digest;
    stored.refcount = 1;
    chunk_by_hash_.emplace(chunk_key, slot);
    entry.chunk_ids.push_back(slot);
    ++live_chunks_;
    chunks_counter().increment();
  }
}

void ModelStore::release_chunks_locked(Entry& entry) {
  for (const std::uint32_t slot : entry.chunk_ids) {
    ChunkSlot& chunk = chunks_[slot];
    if (--chunk.refcount == 0) {
      chunk_by_hash_.erase(to_hex(chunk.hash));
      chunk.bytes.clear();
      chunk.bytes.shrink_to_fit();
      free_chunk_slots_.push_back(slot);
      --live_chunks_;
    }
  }
  entry.chunk_ids.clear();
  entry.chunk_ids.shrink_to_fit();
}

const nn::ParamVector& ModelStore::get(PayloadId id) const {
  get_counter().increment();
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::get: unknown payload id");
  }
  if (entries_[id].released) {
    throw std::logic_error("ModelStore::get: payload was released");
  }
  return entries_[id].params;
}

void ModelStore::release(PayloadId id) {
  released_counter().increment();
  WriterLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::release: unknown payload id");
  }
  Entry& entry = entries_[id];
  if (entry.released) return;
  by_hash_.erase(to_hex(entry.hash));
  live_floats_ -= entry.params.size();
  entry.params.clear();
  entry.params.shrink_to_fit();
  entry.released = true;
  release_chunks_locked(entry);
}

bool ModelStore::is_released(PayloadId id) const {
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::is_released: unknown payload id");
  }
  return entries_[id].released;
}

PayloadId ModelStore::add_released(const Sha256Digest& hash) {
  WriterLock lock(mutex_);
  const PayloadId id = entries_.size();
  entries_.push_back({nn::ParamVector{}, hash, /*released=*/true, {}});
  return id;
}

const Sha256Digest& ModelStore::hash_of(PayloadId id) const {
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::hash_of: unknown payload id");
  }
  return entries_[id].hash;
}

std::size_t ModelStore::size() const {
  ReaderLock lock(mutex_);
  return entries_.size();
}

void ModelStore::configure_chunking(const ChunkParams& params) {
  WriterLock lock(mutex_);
  if (!entries_.empty()) {
    throw std::logic_error(
        "ModelStore::configure_chunking: store is not empty");
  }
  if (params.min_bytes == 0 || params.max_bytes < params.min_bytes ||
      params.mask_bits >= 64) {
    throw std::invalid_argument(
        "ModelStore::configure_chunking: bad chunk parameters");
  }
  chunking_ = true;
  chunk_params_ = params;
}

bool ModelStore::chunking_enabled() const {
  ReaderLock lock(mutex_);
  return chunking_;
}

ChunkParams ModelStore::chunk_params() const {
  ReaderLock lock(mutex_);
  return chunk_params_;
}

std::size_t ModelStore::chunk_count() const {
  ReaderLock lock(mutex_);
  return live_chunks_;
}

void ModelStore::serialize(ByteWriter& writer) const {
  ReaderLock lock(mutex_);
  writer.write_u8(chunking_ ? 1 : 0);
  if (!chunking_) {
    // Flat body: byte-identical to the v2 store section.
    writer.write_u64(entries_.size());
    for (const auto& entry : entries_) {
      // Liveness flag per entry: released payloads persist hash-only, so a
      // pruned ledger's dump shrinks with its store.
      writer.write_u8(entry.released ? 0 : 1);
      if (entry.released) {
        writer.write_bytes(entry.hash);
      } else {
        writer.write_f32_span(entry.params);
      }
    }
    return;
  }
  writer.write_u64(chunk_params_.min_bytes);
  writer.write_u64(chunk_params_.max_bytes);
  writer.write_u32(chunk_params_.mask_bits);
  // Each unique chunk's bytes are written once; freed slots persist as
  // empty byte strings so live entries' slot ids stay meaningful.
  writer.write_u64(chunks_.size());
  for (const auto& chunk : chunks_) writer.write_bytes(chunk.bytes);
  writer.write_u64(entries_.size());
  for (const auto& entry : entries_) {
    writer.write_u8(entry.released ? 0 : 1);
    if (entry.released) {
      writer.write_bytes(entry.hash);
    } else {
      writer.write_u32_span(entry.chunk_ids);
    }
  }
}

void ModelStore::deserialize_into(ByteReader& reader, ModelStore& store) {
  const std::uint8_t chunked = reader.read_u8();
  if (chunked == 0) {
    deserialize_into_v2(reader, store);
    return;
  }
  if (chunked != 1) {
    throw SerializeError("ModelStore: bad chunked flag");
  }
  ChunkParams params;
  params.min_bytes = reader.read_u64();
  params.max_bytes = reader.read_u64();
  params.mask_bits = reader.read_u32();
  store.configure_chunking(params);  // validates; store must be empty
  const std::uint64_t chunk_slots = reader.read_u64();
  std::vector<std::vector<std::uint8_t>> slots;
  slots.reserve(chunk_slots);
  for (std::uint64_t i = 0; i < chunk_slots; ++i) {
    slots.push_back(reader.read_bytes());
  }
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t live = reader.read_u8();
    if (live == 1) {
      // Reassemble the payload bytes from its chunk ids; add() re-chunks
      // deterministically (same content, same cutter parameters).
      std::vector<std::uint8_t> bytes;
      for (const std::uint32_t slot : reader.read_u32_vector()) {
        if (slot >= slots.size()) {
          throw SerializeError("ModelStore: chunk id out of range");
        }
        bytes.insert(bytes.end(), slots[slot].begin(), slots[slot].end());
      }
      if (bytes.size() % sizeof(float) != 0) {
        throw SerializeError("ModelStore: chunked payload not float-sized");
      }
      nn::ParamVector params_vec(bytes.size() / sizeof(float));
      if (!bytes.empty()) {
        std::memcpy(params_vec.data(), bytes.data(), bytes.size());
      }
      const auto added = store.add(std::move(params_vec));
      if (added.id != i) {
        throw SerializeError("ModelStore: duplicate payload in dump");
      }
      continue;
    }
    if (live != 0) {
      throw SerializeError("ModelStore: bad payload liveness flag");
    }
    const std::vector<std::uint8_t> hash_bytes = reader.read_bytes();
    Sha256Digest hash{};
    if (hash_bytes.size() != hash.size()) {
      throw SerializeError("ModelStore: bad released payload hash size");
    }
    std::memcpy(hash.data(), hash_bytes.data(), hash.size());
    store.add_released(hash);
  }
}

void ModelStore::deserialize_into_v2(ByteReader& reader, ModelStore& store) {
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t live = reader.read_u8();
    if (live == 1) {
      const auto added = store.add(reader.read_f32_vector());
      if (added.id != i) {
        // Duplicate payloads collapse on re-add; a well-formed dump never
        // contains duplicates because add() deduplicated on write.
        throw SerializeError("ModelStore: duplicate payload in dump");
      }
      continue;
    }
    if (live != 0) {
      throw SerializeError("ModelStore: bad payload liveness flag");
    }
    const std::vector<std::uint8_t> hash_bytes = reader.read_bytes();
    Sha256Digest hash{};
    if (hash_bytes.size() != hash.size()) {
      throw SerializeError("ModelStore: bad released payload hash size");
    }
    std::memcpy(hash.data(), hash_bytes.data(), hash.size());
    store.add_released(hash);
  }
}

void ModelStore::deserialize_into_v1(ByteReader& reader, ModelStore& store) {
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto added = store.add(reader.read_f32_vector());
    if (added.id != i) {
      throw SerializeError("ModelStore: duplicate payload in dump");
    }
  }
}

std::size_t ModelStore::total_parameters() const {
  ReaderLock lock(mutex_);
  return live_floats_;
}

std::size_t ModelStore::live_bytes() const {
  ReaderLock lock(mutex_);
  return live_floats_ * sizeof(float);
}

}  // namespace tanglefl::tangle
