#include "tangle/model_store.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tanglefl::tangle {
namespace {

obs::Counter& add_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.add.count");
  return counter;
}

obs::Counter& dedup_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.add.deduplicated");
  return counter;
}

obs::Counter& get_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.get.count");
  return counter;
}

obs::Counter& released_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("store.released.count");
  return counter;
}

obs::Histogram& add_timing_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "store.add_us", obs::BucketLayout::exponential(1.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

}  // namespace

Sha256Digest ModelStore::hash_params(std::span<const float> params) {
  return Sha256::hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(params.data()),
      params.size() * sizeof(float)));
}

ModelStore::AddResult ModelStore::add(nn::ParamVector params) {
  obs::TraceScope span("store.add", &add_timing_histogram());
  add_counter().increment();
  AddResult result;
  result.hash = hash_params(params);
  const std::string key = to_hex(result.hash);

  WriterLock lock(mutex_);
  if (const auto it = by_hash_.find(key); it != by_hash_.end()) {
    result.id = it->second;
    result.deduplicated = true;
    dedup_counter().increment();
    return result;
  }
  result.id = entries_.size();
  entries_.push_back({std::move(params), result.hash});
  by_hash_.emplace(key, result.id);
  return result;
}

const nn::ParamVector& ModelStore::get(PayloadId id) const {
  get_counter().increment();
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::get: unknown payload id");
  }
  if (entries_[id].released) {
    throw std::logic_error("ModelStore::get: payload was released");
  }
  return entries_[id].params;
}

void ModelStore::release(PayloadId id) {
  released_counter().increment();
  WriterLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::release: unknown payload id");
  }
  Entry& entry = entries_[id];
  if (entry.released) return;
  by_hash_.erase(to_hex(entry.hash));
  entry.params.clear();
  entry.params.shrink_to_fit();
  entry.released = true;
}

bool ModelStore::is_released(PayloadId id) const {
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::is_released: unknown payload id");
  }
  return entries_[id].released;
}

PayloadId ModelStore::add_released(const Sha256Digest& hash) {
  WriterLock lock(mutex_);
  const PayloadId id = entries_.size();
  entries_.push_back({nn::ParamVector{}, hash, /*released=*/true});
  return id;
}

const Sha256Digest& ModelStore::hash_of(PayloadId id) const {
  ReaderLock lock(mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore::hash_of: unknown payload id");
  }
  return entries_[id].hash;
}

std::size_t ModelStore::size() const {
  ReaderLock lock(mutex_);
  return entries_.size();
}

void ModelStore::serialize(ByteWriter& writer) const {
  ReaderLock lock(mutex_);
  writer.write_u64(entries_.size());
  for (const auto& entry : entries_) {
    // Liveness flag per entry: released payloads persist hash-only, so a
    // pruned ledger's dump shrinks with its store.
    writer.write_u8(entry.released ? 0 : 1);
    if (entry.released) {
      writer.write_bytes(entry.hash);
    } else {
      writer.write_f32_span(entry.params);
    }
  }
}

void ModelStore::deserialize_into(ByteReader& reader, ModelStore& store) {
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t live = reader.read_u8();
    if (live == 1) {
      const auto added = store.add(reader.read_f32_vector());
      if (added.id != i) {
        // Duplicate payloads collapse on re-add; a well-formed dump never
        // contains duplicates because add() deduplicated on write.
        throw SerializeError("ModelStore: duplicate payload in dump");
      }
      continue;
    }
    if (live != 0) {
      throw SerializeError("ModelStore: bad payload liveness flag");
    }
    const std::vector<std::uint8_t> hash_bytes = reader.read_bytes();
    Sha256Digest hash{};
    if (hash_bytes.size() != hash.size()) {
      throw SerializeError("ModelStore: bad released payload hash size");
    }
    std::memcpy(hash.data(), hash_bytes.data(), hash.size());
    store.add_released(hash);
  }
}

void ModelStore::deserialize_into_v1(ByteReader& reader, ModelStore& store) {
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto added = store.add(reader.read_f32_vector());
    if (added.id != i) {
      throw SerializeError("ModelStore: duplicate payload in dump");
    }
  }
}

std::size_t ModelStore::total_parameters() const {
  ReaderLock lock(mutex_);
  std::size_t total = 0;
  for (const auto& entry : entries_) total += entry.params.size();
  return total;
}

}  // namespace tanglefl::tangle
