#include "tangle/health.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::tangle {
namespace {

// Delays span rounds (sync/gossip, small integers) and microseconds
// (async, up to ~1e7 for multi-second confirmation), so the layout covers
// 1 .. 4^15 ~= 1.07e9.
obs::BucketLayout delay_layout() {
  return obs::BucketLayout::exponential(1.0, 4.0, 16);
}

obs::Histogram& first_approval_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.health.first_approval_delay", delay_layout());
  return hist;
}

obs::Histogram& confirmation_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.health.confirmation_delay", delay_layout());
  return hist;
}

struct HealthGauges {
  obs::Gauge& tip_count;
  obs::Gauge& orphan_count;
  obs::Gauge& orphan_rate;
  obs::Gauge& confirmed_count;
  obs::Gauge& depth_mean;
  obs::Gauge& depth_max;
  obs::Gauge& depth_p50;
  obs::Gauge& depth_p90;
};

HealthGauges& health_gauges() {
  auto& registry = obs::MetricsRegistry::global();
  static HealthGauges gauges{
      registry.gauge("tangle.health.tip_count"),
      registry.gauge("tangle.health.orphan_count"),
      registry.gauge("tangle.health.orphan_rate"),
      registry.gauge("tangle.health.confirmed_count"),
      registry.gauge("tangle.health.depth_mean"),
      registry.gauge("tangle.health.depth_max"),
      registry.gauge("tangle.health.depth_p50"),
      registry.gauge("tangle.health.depth_p90"),
  };
  return gauges;
}

// Nearest-rank quantile over an ascending vector; deterministic and exact
// (the depth distribution is small integers, interpolation adds nothing).
double nearest_rank(const std::vector<std::uint32_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return static_cast<double>(sorted[std::min(rank, sorted.size() - 1)]);
}

}  // namespace

HealthTracker::HealthTracker(HealthConfig config) : config_(config) {}

HealthSample HealthTracker::sample(const TangleView& view,
                                   const ViewCacheEntry* cones,
                                   std::uint64_t now, Rng& rng) {
  const Tangle& tangle = view.tangle();
  const std::size_t n = view.size();
  approval_recorded_.resize(std::max(approval_recorded_.size(), n), false);
  confirmed_.resize(std::max(confirmed_.size(), n), false);

  HealthSample out;
  out.tangle_size = view.member_count();

  // One descending pass computes tip status, first approvals, and approval
  // depth together: children always have higher indices than parents, so
  // every approver's depth is final before its parents are visited.
  std::vector<std::uint32_t> depths(n, 0);
  std::vector<std::uint32_t> member_depths;
  member_depths.reserve(out.tangle_size);
  std::uint64_t depth_sum = 0;
  std::size_t non_genesis = 0;
  for (std::size_t idx = n; idx-- > 0;) {
    const auto i = static_cast<TxIndex>(idx);
    if (!view.contains(i)) continue;
    bool approved = false;
    TxIndex first_approver = 0;
    if (cones != nullptr) {
      const auto approvers = cones->approvers(i);
      for (const TxIndex a : approvers) {
        if (!approved) first_approver = a;
        approved = true;
        depths[i] = std::max(depths[i], depths[a] + 1);
      }
    } else {
      for (const TxIndex a : tangle.approvers(i)) {
        if (!view.contains(a)) continue;
        if (!approved) first_approver = a;
        approved = true;
        depths[i] = std::max(depths[i], depths[a] + 1);
      }
    }

    if (i != tangle.genesis()) {
      ++non_genesis;
      if (approved && !approval_recorded_[i]) {
        approval_recorded_[i] = true;
        // Approvers ascend in insertion order, which both engines align
        // with publish time, so the lowest index is the earliest approval.
        const std::uint64_t delay = tangle.transaction(first_approver).round -
                                    tangle.transaction(i).round;
        out.first_approval_delays.push_back(delay);
        first_approval_histogram().record(static_cast<double>(delay));
      }
      if (!approved) {
        ++out.tip_count;
        // Subtraction form: `round + orphan_age` wraps for large configs
        // (e.g. orphan_age = UINT64_MAX means "never an orphan" but the
        // wrapped sum classified everything as aged).
        const std::uint64_t round = tangle.transaction(i).round;
        if (now >= round && now - round >= config_.orphan_age) {
          ++out.orphan_count;
        }
      }
    } else if (!approved) {
      ++out.tip_count;  // a genesis-only ledger has one tip, never an orphan
    }
    depth_sum += depths[i];
    out.approval_depth_max =
        std::max<std::uint64_t>(out.approval_depth_max, depths[i]);
    member_depths.push_back(depths[i]);
  }
  out.orphan_rate = non_genesis == 0
                        ? 0.0
                        : static_cast<double>(out.orphan_count) /
                              static_cast<double>(non_genesis);
  out.approval_depth_mean =
      member_depths.empty()
          ? 0.0
          : static_cast<double>(depth_sum) /
                static_cast<double>(member_depths.size());
  std::sort(member_depths.begin(), member_depths.end());
  out.approval_depth_p50 = nearest_rank(member_depths, 0.50);
  out.approval_depth_p90 = nearest_rank(member_depths, 0.90);

  if (config_.track_confirmation) {
    const std::vector<double> confidences =
        cones != nullptr
            ? compute_confidences(view, *cones, rng, config_.confidence)
            : compute_confidences(view, rng, config_.confidence);
    for (TxIndex i = 1; i < n; ++i) {
      if (!view.contains(i) || confirmed_[i]) continue;
      if (confidences[i] >= config_.confirmation_threshold) {
        confirmed_[i] = true;
        const std::uint64_t delay = now - tangle.transaction(i).round;
        out.confirmation_delays.push_back(delay);
        confirmation_histogram().record(static_cast<double>(delay));
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (confirmed_[i]) ++out.confirmed_count;
  }

  HealthGauges& gauges = health_gauges();
  gauges.tip_count.set(static_cast<double>(out.tip_count));
  gauges.orphan_count.set(static_cast<double>(out.orphan_count));
  gauges.orphan_rate.set(out.orphan_rate);
  gauges.confirmed_count.set(static_cast<double>(out.confirmed_count));
  gauges.depth_mean.set(out.approval_depth_mean);
  gauges.depth_max.set(static_cast<double>(out.approval_depth_max));
  gauges.depth_p50.set(out.approval_depth_p50);
  gauges.depth_p90.set(out.approval_depth_p90);
  return out;
}

}  // namespace tanglefl::tangle
