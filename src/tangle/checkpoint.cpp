#include "tangle/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

namespace tanglefl::tangle {
namespace {

constexpr std::uint32_t kMagic = 0x544e474c;  // "TNGL"
constexpr std::uint32_t kVersionLegacy = 1;   // flag-less store, no frontier
constexpr std::uint32_t kVersionFlat = 2;     // liveness flags, no chunk table
constexpr std::uint32_t kVersion = 3;         // chunked-store capable

/// Satellite integrity check: every transaction's payload handle must
/// resolve in the restored store and hash to what the header recorded.
void validate_payloads(const Tangle& tangle, const ModelStore& store) {
  for (TxIndex i = 0; i < tangle.size(); ++i) {
    const Transaction& tx = tangle.transaction(i);
    if (tx.payload >= store.size()) {
      throw SerializeError("load_ledger: transaction payload id not in store");
    }
    if (store.hash_of(tx.payload) != tx.payload_hash) {
      throw SerializeError("load_ledger: payload hash mismatch");
    }
  }
}

}  // namespace

void save_ledger(const std::string& path, const Tangle& tangle,
                 const ModelStore& store, const ConeStateCheckpoint* cones) {
  ByteWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  tangle.serialize(writer);
  store.serialize(writer);
  writer.write_u64(tangle.prune_floor());
  const bool has_cones = cones != nullptr && !cones->past.empty();
  writer.write_u8(has_cones ? 1 : 0);
  if (has_cones) {
    writer.write_u32_span(cones->past);
    writer.write_u32_span(cones->future);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_ledger: cannot open " + path);
  const auto& bytes = writer.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_ledger: write failed: " + path);
}

Tangle load_ledger(const std::string& path, ModelStore& store,
                   ConeStateCheckpoint* cones) {
  if (store.size() != 0) {
    throw std::invalid_argument("load_ledger: store must be empty");
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_ledger: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("load_ledger: read failed: " + path);

  ByteReader reader(bytes);
  if (reader.read_u32() != kMagic) {
    throw SerializeError("load_ledger: bad magic");
  }
  const std::uint32_t version = reader.read_u32();
  if (version != kVersionLegacy && version != kVersionFlat &&
      version != kVersion) {
    throw SerializeError("load_ledger: unsupported version");
  }
  Tangle tangle = Tangle::deserialize(reader);
  ConeStateCheckpoint sidecar;
  if (version == kVersionLegacy) {
    ModelStore::deserialize_into_v1(reader, store);
  } else {
    if (version == kVersionFlat) {
      ModelStore::deserialize_into_v2(reader, store);
    } else {
      ModelStore::deserialize_into(reader, store);
    }
    const std::uint64_t floor = reader.read_u64();
    if (floor >= tangle.size()) {
      throw SerializeError("load_ledger: prune frontier outside the ledger");
    }
    if (floor > 0) tangle.set_prune_floor(floor);
    if (reader.read_u8() == 1) {
      sidecar.past = reader.read_u32_vector();
      sidecar.future = reader.read_u32_vector();
      if (sidecar.past.size() != tangle.size() ||
          sidecar.future.size() != tangle.size()) {
        throw SerializeError("load_ledger: cone-state size mismatch");
      }
    }
  }
  if (!reader.exhausted()) {
    throw SerializeError("load_ledger: trailing bytes");
  }
  validate_payloads(tangle, store);
  if (cones != nullptr) *cones = std::move(sidecar);
  return tangle;
}

}  // namespace tanglefl::tangle
