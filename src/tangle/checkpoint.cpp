#include "tangle/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

namespace tanglefl::tangle {
namespace {

constexpr std::uint32_t kMagic = 0x544e474c;  // "TNGL"
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_ledger(const std::string& path, const Tangle& tangle,
                 const ModelStore& store) {
  ByteWriter writer;
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  tangle.serialize(writer);
  store.serialize(writer);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_ledger: cannot open " + path);
  const auto& bytes = writer.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_ledger: write failed: " + path);
}

Tangle load_ledger(const std::string& path, ModelStore& store) {
  if (store.size() != 0) {
    throw std::invalid_argument("load_ledger: store must be empty");
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_ledger: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("load_ledger: read failed: " + path);

  ByteReader reader(bytes);
  if (reader.read_u32() != kMagic) {
    throw SerializeError("load_ledger: bad magic");
  }
  if (reader.read_u32() != kVersion) {
    throw SerializeError("load_ledger: unsupported version");
  }
  Tangle tangle = Tangle::deserialize(reader);
  ModelStore::deserialize_into(reader, store);
  if (!reader.exhausted()) {
    throw SerializeError("load_ledger: trailing bytes");
  }
  return tangle;
}

}  // namespace tanglefl::tangle
