// Shared per-view cone/topology cache.
//
// Tip selection, confidence sampling, and Algorithm 1's priority queue all
// need the same derived quantities over a view: past-cone sizes (ratings),
// future-cone sizes (cumulative weights), the tip set, and the in-view
// approver lists every walk step traverses. Before this cache each
// participant of a round recomputed all of them independently — ~3 full
// O(n^2/64) BitMatrix passes per participant per round over the *same*
// shared view prefix, plus a fresh std::vector allocation per walk step in
// TangleView::approvers().
//
// ViewCacheEntry computes everything once per view:
//   * past/future cone size vectors (one bitset-reachability pass each,
//     optionally parallelized over 64-bit word blocks on a ThreadPool —
//     the word-sliced recurrence row[i] |= row[parent] is independent per
//     word column, so the fill partitions perfectly and the popcount
//     reduction is a deterministic integer sum),
//   * the tip set, and
//   * a flat CSR adjacency snapshot of in-view approver lists, so a walk
//     step is a span lookup instead of a filtered vector allocation.
//
// ViewCache is a small keyed LRU of entries:
//   * keying — a view's identity is (prefix count) for prefix views and
//     (count, member count, membership hash + exact packed-mask compare)
//     for masked views; a masked view that covers its whole prefix
//     normalizes to the prefix key, so converged gossip replicas share
//     entries.
//   * invalidation — the tangle is append-only and entries only describe
//     in-view structure, so an entry can never go stale: add_transaction
//     grows the ledger, which changes the *key* of every view that sees
//     the new transaction (its prefix count or membership differs) and
//     leaves old identities untouched. Invalidation is by construction;
//     the cache additionally resets itself if it ever sees a different
//     Tangle instance.
//   * thread-safety — get() takes an internal mutex and may block to
//     build; entries are immutable after construction and shared via
//     shared_ptr, so any number of threads may *read* a returned entry
//     concurrently. Do not call get() from inside a ThreadPool worker of
//     the pool passed to it (the parallel fill would run inline).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/sync.hpp"
#include "tangle/incremental_cones.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl {
class ThreadPool;
}

namespace tanglefl::tangle {

/// Immutable snapshot of everything consensus queries need from one view.
class ViewCacheEntry {
 public:
  /// Computes all derived quantities for `view`. When `pool` is non-null
  /// and the view is large enough, the cone fills are parallelized over
  /// word blocks; results are bit-identical regardless of thread count.
  static std::shared_ptr<const ViewCacheEntry> build(
      const TangleView& view, ThreadPool* pool = nullptr);

  /// Delta build for prefix(-equivalent) views: advances `state` to
  /// view.size() — folding in only the transactions appended since the
  /// previous build — and snapshots its cone vectors instead of running
  /// the O(n^2/64) BitMatrix pass. With pruning disabled the result is
  /// bit-identical to build(); under pruning the frozen region carries the
  /// approximation documented in tangle/incremental_cones.hpp. The caller
  /// must guarantee state.processed() <= view.size() and that the view is
  /// prefix-equivalent (member_count() == size()).
  static std::shared_ptr<const ViewCacheEntry> build_incremental(
      const TangleView& view, IncrementalConeState& state);

  /// Upper bound of member indices (== TangleView::size()).
  std::size_t view_size() const noexcept { return count_; }

  /// Number of transactions each transaction directly or indirectly
  /// approves (the rating of Algorithm 1), indexed by TxIndex.
  std::span<const std::uint32_t> past_cone_sizes() const noexcept {
    return past_;
  }

  /// Number of in-view transactions directly or indirectly approving each
  /// transaction (the cumulative weight steering the random walk).
  std::span<const std::uint32_t> future_cone_sizes() const noexcept {
    return future_;
  }

  /// Transactions with no approver inside the view, ascending.
  std::span<const TxIndex> tips() const noexcept { return tips_; }

  /// Direct approvers of `index` inside the view, ascending — the same
  /// sequence TangleView::approvers() returns, without the allocation.
  /// `index` must be inside the view: the CSR offset table has count_ + 1
  /// rows, so an out-of-view index used to silently read garbage (not
  /// noexcept — the debug-build bounds check throws CheckFailure).
  std::span<const TxIndex> approvers(TxIndex index) const {
    TANGLEFL_DCHECK(index < count_);
    return std::span<const TxIndex>(edges_)
        .subspan(offsets_[index], offsets_[index + 1] - offsets_[index]);
  }

  /// Walk root recorded at build time: the tangle's prune frontier (0 with
  /// pruning off, i.e. the genesis). Tip-selection walks over this entry
  /// start here, never descending into frozen history.
  TxIndex root() const noexcept { return root_; }

 private:
  ViewCacheEntry() = default;

  /// CSR + tip-set fill shared by both builders.
  void fill_topology(const TangleView& view);

  TxIndex root_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint32_t> past_;
  std::vector<std::uint32_t> future_;
  std::vector<TxIndex> tips_;
  std::vector<std::uint32_t> offsets_;  // count_ + 1 CSR row offsets
  std::vector<TxIndex> edges_;          // flat in-view approver lists
};

/// Keyed LRU cache of ViewCacheEntry, shared by all participants of a
/// round. One instance per engine (and per Tangle).
class ViewCache {
 public:
  /// `incremental` enables the delta build path (ViewCacheEntry::
  /// build_incremental) for monotonically growing prefix views; masked and
  /// shrinking views always fall back to the full BitMatrix build. Off, the
  /// cache behaves exactly as before (every miss is a full build).
  explicit ViewCache(std::size_t capacity = 8, bool incremental = true)
      : capacity_(capacity), incremental_(incremental) {}

  /// Returns the entry for `view`, building it on a miss. Hits and misses
  /// are counted in the tangle.view_cache.{hit,miss} metrics.
  std::shared_ptr<const ViewCacheEntry> get(const TangleView& view,
                                            ThreadPool* pool = nullptr);

  /// Drops every cached entry (outstanding shared_ptrs stay valid). The
  /// incremental cone state survives — it describes the tangle, not the
  /// entries.
  void clear();

  /// Copies of the incremental cone-state vectors, for checkpointing a
  /// pruned ledger (tangle/checkpoint.hpp). Both empty when the state has
  /// processed nothing yet.
  struct ConeStateSnapshot {
    std::vector<std::uint32_t> past;
    std::vector<std::uint32_t> future;
  };
  ConeStateSnapshot cone_state_snapshot() const;

  /// Seeds the incremental state from a checkpoint snapshot and binds the
  /// cache to `tangle` (whose leading snapshot.past.size() transactions
  /// the arrays must describe). Resuming through this keeps cone values —
  /// including their historical-floor approximations — byte-identical to
  /// the run that saved them.
  void restore_cone_state(const Tangle& tangle, ConeStateSnapshot snapshot);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    std::size_t count = 0;
    std::size_t members = 0;
    std::uint64_t mask_hash = 0;
    // Packed membership bits for exact verification on hash match; empty
    // for prefix(-equivalent) views.
    std::vector<std::uint64_t> mask_words;
    std::shared_ptr<const ViewCacheEntry> entry;
    std::uint64_t last_used = 0;
  };

  mutable Mutex mutex_;
  std::vector<Slot> slots_ TANGLEFL_GUARDED_BY(mutex_);
  std::uint64_t tick_ TANGLEFL_GUARDED_BY(mutex_) = 0;
  const Tangle* tangle_ TANGLEFL_GUARDED_BY(mutex_) = nullptr;
  IncrementalConeState cone_state_ TANGLEFL_GUARDED_BY(mutex_);
  const std::size_t capacity_;  // lint:allow(unannotated-guard) immutable
  const bool incremental_;      // lint:allow(unannotated-guard) immutable
};

}  // namespace tanglefl::tangle
