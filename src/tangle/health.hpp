// DAG health probes (timeline layer): per-sample tip/orphan statistics,
// approval-depth distribution, and per-transaction time-to-first-approval /
// time-to-confirmation, published as registry metrics so the timeline
// sampler turns them into per-round series.
//
// Time units follow the owning engine: rounds for the synchronous and
// gossip engines, microseconds for the asynchronous engine (transaction
// `round` fields store publish time there). `HealthConfig::orphan_age` is
// expressed in those same units.
//
// A HealthTracker is stateful — it remembers which transactions have
// already had their first approval or confirmation recorded, so each event
// is observed exactly once. One tracker per engine run; sample() must be
// called from a deterministic context (round barrier / event loop), never
// from pool workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "tangle/confidence.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

class ViewCacheEntry;

struct HealthConfig {
  /// A tip older than this (in engine time units) counts as an orphan:
  /// past the age where honest tip selection would plausibly still pick it.
  std::uint64_t orphan_age = 5;
  /// Confidence at or above this marks a transaction confirmed.
  double confirmation_threshold = 0.5;
  /// Walk budget for the confirmation estimate.
  ConfidenceConfig confidence;
  /// Confirmation tracking runs confidence walks each sample; disable to
  /// keep probes O(N + E) when confirmation latency is not needed.
  bool track_confirmation = true;
};

/// One probe of the DAG. Tip/orphan/depth fields describe the whole view;
/// the delay vectors list only events newly observed by this sample.
struct HealthSample {
  std::size_t tangle_size = 0;  // in-view transaction count
  std::size_t tip_count = 0;
  std::size_t orphan_count = 0;
  double orphan_rate = 0.0;  // orphans / non-genesis in-view transactions
  /// Approval depth of a transaction: 0 for tips, else 1 + the maximum
  /// depth among its in-view approvers — the height of the future cone.
  double approval_depth_mean = 0.0;
  std::uint64_t approval_depth_max = 0;
  double approval_depth_p50 = 0.0;
  double approval_depth_p90 = 0.0;
  /// Transactions ever confirmed (confidence >= threshold), cumulative.
  std::size_t confirmed_count = 0;
  /// now - publish time for transactions first approved / confirmed since
  /// the previous sample (engine time units).
  std::vector<std::uint64_t> first_approval_delays;
  std::vector<std::uint64_t> confirmation_delays;
};

class HealthTracker {
 public:
  explicit HealthTracker(HealthConfig config);

  /// Probes `view` at time `now`. `cones` may be null (gossip / uncached
  /// paths); when present it must describe exactly `view`. `rng` drives the
  /// confirmation confidence walks and must come from a dedicated stream so
  /// probing never perturbs simulation randomness.
  HealthSample sample(const TangleView& view, const ViewCacheEntry* cones,
                      std::uint64_t now, Rng& rng);

  const HealthConfig& config() const noexcept { return config_; }

 private:
  HealthConfig config_;
  std::vector<bool> approval_recorded_;
  std::vector<bool> confirmed_;
};

}  // namespace tanglefl::tangle
