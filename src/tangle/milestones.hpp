// Milestone-style checkpointing: freezes the cone below a *confirmed
// milestone* and prunes confirmed history out of the walk space.
//
// A transaction M qualifies as a milestone when it lies in the reflexive
// past cone of EVERY required tip (for the round/async engines the current
// tip set; for gossip the union of all replica tip sets). Advancing the
// prune frontier (Tangle::set_prune_floor) to M then guarantees:
//
//   * every tip has index > M, so rooting tip-selection / biased walks at
//     M instead of the genesis reaches exactly the same tip set — every
//     walkable path from M stays inside the live window [M, n);
//   * every future attachment approves M transitively (its parents are
//     tips reached from M), so the frontier can keep advancing;
//   * confidence of frozen transactions is pinned to 1.0 — M is approved
//     by every tip, and everything below M is treated as confirmed
//     history (tangle/confidence.cpp skips the descent);
//   * ModelStore payloads referenced only by frozen transactions are dead
//     to every consumer (walk loss probes and Algorithm 1 stay in the live
//     window) and can be released.
//
// The frontier trades exactness below the milestone for bounded state:
// ratings count the frozen region wholesale (orphans below the floor are
// treated as confirmed — see tangle/incremental_cones.hpp) and future
// cones below the floor go stale. With pruning disabled (the default)
// nothing changes anywhere, byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::tangle {

struct MilestoneConfig {
  bool enabled = false;

  // Every `interval`-th MilestoneTracker::tick() is a milestone-check
  // point (engines tick once per round barrier / evaluation instant).
  std::size_t interval = 8;

  // The newest `keep_recent` transactions are never frozen; this is the
  // live window walks, confidence sampling, and Algorithm 1 operate on.
  // Must comfortably exceed num_reference_models and the per-round tip
  // churn so consensus never runs out of live candidates.
  std::size_t keep_recent = 256;

  // Coverage-pass bail-out: with more required tips than this the check
  // is skipped (the bitset pass is O(window * tips / 64)).
  std::size_t max_required_tips = 1024;
};

/// Largest index m with current_floor < m, m + keep_recent < n (n =
/// cones.view_size()) that lies in the reflexive past cone of every
/// required tip; returns current_floor when none qualifies. One descending
/// tip-coverage bitset pass over the live region of the full-ledger entry.
TxIndex find_milestone(const ViewCacheEntry& cones,
                       std::span<const TxIndex> required_tips,
                       TxIndex current_floor, std::size_t keep_recent,
                       std::size_t max_required_tips = 1024);

/// Releases every ModelStore payload referenced by no transaction at or
/// above the prune floor. Returns the number of payloads released.
std::size_t release_frozen_payloads(const Tangle& tangle, ModelStore& store);

/// Engine-side driver: owns the check cadence and the prune metrics.
class MilestoneTracker {
 public:
  explicit MilestoneTracker(MilestoneConfig config) : config_(config) {}

  const MilestoneConfig& config() const noexcept { return config_; }

  /// Counts one barrier/evaluation instant; true when this one is a
  /// milestone-check point (every config().interval ticks).
  bool tick();

  /// Runs the milestone check against the full-ledger entry: finds the
  /// best milestone covered by `required_tips`, advances the tangle's
  /// prune frontier (never past `floor_limit`), and releases dead
  /// payloads. Returns true when the frontier advanced. Publishes the
  /// tangle.prune.* metrics.
  bool advance(Tangle& tangle, ModelStore& store, const ViewCacheEntry& cones,
               std::span<const TxIndex> required_tips,
               std::size_t floor_limit = std::numeric_limits<std::size_t>::max());

  /// Convenience overload: required tips are the entry's own tip set (the
  /// round-based and asynchronous engines, where every walkable view is a
  /// prefix of the full ledger).
  bool advance(Tangle& tangle, ModelStore& store,
               const ViewCacheEntry& cones);

 private:
  MilestoneConfig config_;
  std::uint64_t ticks_ = 0;
};

}  // namespace tanglefl::tangle
