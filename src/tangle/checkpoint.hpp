// Ledger checkpointing: saves/restores a (Tangle, ModelStore) pair to a
// file, so long experiments (e.g. the 200-round pre-training phase of the
// attack studies) can be snapshotted and resumed. The format is the binary
// serialization of both structures behind a magic/version header.
//
// Version 2 additionally persists the prune frontier and (optionally) the
// incremental cone-state vectors, so a pruned ledger resumes with exactly
// the cone values — historical-floor approximations included — the saving
// run had. Version 1 files still load (frontier 0, no cone state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

/// Sidecar for the incremental cone state (see tangle/incremental_cones
/// .hpp and ViewCache::cone_state_snapshot()). Both vectors are either
/// empty or sized to the tangle.
struct ConeStateCheckpoint {
  std::vector<std::uint32_t> past;
  std::vector<std::uint32_t> future;
};

/// Writes the ledger (including its prune frontier) to `path`; `cones`,
/// when non-null, rides along so a pruned run can resume bit-identically.
/// Throws std::runtime_error on I/O failure.
void save_ledger(const std::string& path, const Tangle& tangle,
                 const ModelStore& store,
                 const ConeStateCheckpoint* cones = nullptr);

/// Reads a ledger back: returns the tangle (prune frontier restored) and
/// refills `store` (which must be empty — the payload ids in the dump are
/// dense from zero). Every transaction's payload id is validated against
/// the restored store and its recorded hash — a truncated or hand-edited
/// dump fails here instead of deep inside a simulation. When `cones` is
/// non-null it receives the saved cone-state sidecar (empty vectors when
/// the dump carried none). Throws SerializeError on malformed content,
/// std::runtime_error on I/O failure.
Tangle load_ledger(const std::string& path, ModelStore& store,
                   ConeStateCheckpoint* cones = nullptr);

}  // namespace tanglefl::tangle
