// Ledger checkpointing: saves/restores a (Tangle, ModelStore) pair to a
// file, so long experiments (e.g. the 200-round pre-training phase of the
// attack studies) can be snapshotted and resumed. The format is the binary
// serialization of both structures behind a magic/version header.
#pragma once

#include <string>

#include "tangle/model_store.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

/// Writes the ledger to `path`. Throws std::runtime_error on I/O failure.
void save_ledger(const std::string& path, const Tangle& tangle,
                 const ModelStore& store);

/// Reads a ledger back: returns the tangle and refills `store` (which must
/// be empty — the payload ids in the dump are dense from zero). Throws
/// SerializeError on malformed content, std::runtime_error on I/O failure.
Tangle load_ledger(const std::string& path, ModelStore& store);

}  // namespace tanglefl::tangle
