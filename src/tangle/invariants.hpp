// Runtime invariant checks for the tangle DAG.
//
// The consensus analysis the simulator relies on (Algorithm 1 ratings,
// Algorithm 2 biased walks, Monte-Carlo confidence) assumes a handful of
// structural properties that the Tangle class maintains by construction:
//
//   * acyclicity — approval edges point strictly backwards in insertion
//     order (parents precede children; only the genesis self-approves),
//   * solidity — every referenced parent exists,
//   * approver accounting — the child lists (`approvers_`) are exactly the
//     inverse of the distinct-parent lists, in insertion order,
//   * cone consistency — past/future cone sizes grow strictly along edges,
//     the partial order the biased walk's cumulative weights depend on,
//   * header integrity — each transaction id matches the hash of its
//     consensus fields, and rounds are non-decreasing,
//   * confidence sanity — Monte-Carlo confidences lie in [0, 1] and are
//     monotone along approval edges (every walk that hits a child also
//     hits its parents), the static form of "confidence is monotone under
//     new approvals".
//
// `find_invariant_violations` re-derives all of this from scratch and
// reports every violation with a human-readable message; it never throws.
// `Tangle::check_invariants()` (declared in tangle.hpp) forwards to it.
// When the build defines TANGLEFL_DEBUG_CHECKS, every Tangle mutation
// re-validates the structure and a violation raises tanglefl::CheckFailure.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

/// Full structural audit of `tangle`. Returns one message per violated
/// invariant (empty vector == healthy). O(V·E/64) via bitset reachability,
/// plus one SHA-256 per transaction for header integrity.
std::vector<std::string> find_invariant_violations(const Tangle& tangle);

/// Confidence-vector audit against the view it was computed for: size
/// match, range [0, 1], and monotonicity along approval edges
/// (confidence(parent) >= confidence(child) for every in-view edge).
std::vector<std::string> find_confidence_violations(
    const TangleView& view, std::span<const double> confidence);

/// Throws tanglefl::CheckFailure listing every violation if the tangle is
/// corrupt; no-op when healthy. Called from mutation paths when
/// TANGLEFL_DEBUG_CHECKS is defined.
void assert_invariants(const Tangle& tangle);

/// Test-only backdoor used by the invariant tests to forge corruption
/// (cycles, stale approver lists, bogus headers) inside an otherwise
/// encapsulated Tangle. Not for use outside tests.
struct TangleTestAccess {
  static std::vector<Transaction>& transactions(Tangle& tangle) {
    return tangle.transactions_;
  }
  static std::vector<std::vector<TxIndex>>& parent_indices(Tangle& tangle) {
    return tangle.parent_indices_;
  }
  static std::vector<std::vector<TxIndex>>& approvers(Tangle& tangle) {
    return tangle.approvers_;
  }
};

}  // namespace tanglefl::tangle
