#include "tangle/milestones.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"

namespace tanglefl::tangle {
namespace {

obs::Counter& milestone_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.prune.milestones");
  return counter;
}

obs::Counter& payloads_released_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.prune.payloads_released");
  return counter;
}

obs::Counter& params_released_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.prune.params_released");
  return counter;
}

obs::Gauge& floor_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("tangle.prune.floor");
  return gauge;
}

obs::Gauge& live_window_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("tangle.prune.live_window");
  return gauge;
}

}  // namespace

TxIndex find_milestone(const ViewCacheEntry& cones,
                       std::span<const TxIndex> required_tips,
                       TxIndex current_floor, std::size_t keep_recent,
                       std::size_t max_required_tips) {
  const std::size_t n = cones.view_size();
  const std::size_t tips = required_tips.size();
  if (tips == 0 || tips > max_required_tips) return current_floor;
  // No candidate above the floor can be approved by a tip at or below it
  // (e.g. a gossip replica still stuck at the genesis).
  for (const TxIndex t : required_tips) {
    if (t <= current_floor || t >= n) return current_floor;
  }
  if (n <= keep_recent || n - keep_recent <= current_floor + 1) {
    return current_floor;
  }

  // coverage[i] = bitset of required tips whose reflexive past cone holds
  // i. Tips seed their own bit; one descending pass propagates bits from
  // approvers (children carry every tip that approves them). Only rows in
  // the live region (current_floor, n) ever matter: candidates lie there,
  // and so does every path from a candidate to a tip.
  const std::size_t words = (tips + 63) / 64;
  const TxIndex base = current_floor + 1;
  std::vector<std::uint64_t> coverage((n - base) * words, 0);
  const auto row = [&](TxIndex i) { return coverage.data() + (i - base) * words; };

  std::vector<std::uint32_t> tip_bit(n, std::numeric_limits<std::uint32_t>::max());
  for (std::size_t b = 0; b < tips; ++b) {
    tip_bit[required_tips[b]] = static_cast<std::uint32_t>(b);
  }

  const std::uint64_t full_last =
      (tips % 64 == 0) ? ~0ULL : ((1ULL << (tips % 64)) - 1);
  const TxIndex limit = static_cast<TxIndex>(n - keep_recent);  // exclusive
  TxIndex best = current_floor;
  for (TxIndex ii = n; ii > base; --ii) {
    const TxIndex i = ii - 1;
    std::uint64_t* r = row(i);
    for (const TxIndex child : cones.approvers(i)) {
      const std::uint64_t* c = row(child);
      for (std::size_t w = 0; w < words; ++w) r[w] |= c[w];
    }
    if (tip_bit[i] != std::numeric_limits<std::uint32_t>::max()) {
      r[tip_bit[i] / 64] |= (1ULL << (tip_bit[i] % 64));
    }
    if (i < limit) {
      bool full = r[words - 1] == full_last;
      for (std::size_t w = 0; full && w + 1 < words; ++w) {
        full = r[w] == ~0ULL;
      }
      if (full) {
        best = i;  // descending scan: the first full row is the largest
        break;
      }
    }
  }
  return best;
}

std::size_t release_frozen_payloads(const Tangle& tangle, ModelStore& store) {
  const TxIndex floor = tangle.prune_floor();
  if (floor == 0) return 0;
  std::vector<bool> live(store.size(), false);
  for (TxIndex i = floor; i < tangle.size(); ++i) {
    live[tangle.transaction(i).payload] = true;
  }
  std::size_t released = 0;
  for (PayloadId id = 0; id < live.size(); ++id) {
    if (!live[id] && !store.is_released(id)) {
      params_released_counter().add(store.get(id).size());
      store.release(id);
      ++released;
    }
  }
  payloads_released_counter().add(released);
  return released;
}

bool MilestoneTracker::tick() {
  if (!config_.enabled) return false;
  const std::size_t interval = std::max<std::size_t>(1, config_.interval);
  return ++ticks_ % interval == 0;
}

bool MilestoneTracker::advance(Tangle& tangle, ModelStore& store,
                               const ViewCacheEntry& cones,
                               std::span<const TxIndex> required_tips,
                               std::size_t floor_limit) {
  TxIndex milestone =
      find_milestone(cones, required_tips, tangle.prune_floor(),
                     config_.keep_recent, config_.max_required_tips);
  milestone = std::min<TxIndex>(milestone, floor_limit);
  if (milestone <= tangle.prune_floor()) return false;
  tangle.set_prune_floor(milestone);
  milestone_counter().increment();
  floor_gauge().set(static_cast<double>(milestone));
  live_window_gauge().set(static_cast<double>(tangle.size() - milestone));
  release_frozen_payloads(tangle, store);
  return true;
}

bool MilestoneTracker::advance(Tangle& tangle, ModelStore& store,
                               const ViewCacheEntry& cones) {
  return advance(tangle, store, cones, cones.tips());
}

}  // namespace tanglefl::tangle
