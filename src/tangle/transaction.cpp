#include "tangle/transaction.hpp"

#include <algorithm>

namespace tanglefl::tangle {

TransactionId compute_transaction_id(std::span<const TransactionId> parents,
                                     const Sha256Digest& payload_hash,
                                     std::uint64_t round,
                                     std::uint64_t nonce) {
  ByteWriter preimage;
  preimage.write_u64(parents.size());
  for (const auto& parent : parents) {
    preimage.write_bytes(parent);
  }
  preimage.write_bytes(payload_hash);
  preimage.write_u64(round);
  preimage.write_u64(nonce);
  return Sha256::hash(preimage.bytes());
}

void serialize_transaction(const Transaction& tx, ByteWriter& writer) {
  writer.write_bytes(tx.id);
  writer.write_u64(tx.parents.size());
  for (const auto& parent : tx.parents) {
    writer.write_bytes(parent);
  }
  writer.write_bytes(tx.payload_hash);
  writer.write_u64(tx.payload);
  writer.write_u64(tx.round);
  writer.write_u64(tx.nonce);
  writer.write_string(tx.publisher);
}

namespace {

Sha256Digest read_digest(ByteReader& reader) {
  const std::vector<std::uint8_t> bytes = reader.read_bytes();
  if (bytes.size() != 32) {
    throw SerializeError("transaction digest must be 32 bytes");
  }
  Sha256Digest digest;
  std::copy(bytes.begin(), bytes.end(), digest.begin());
  return digest;
}

}  // namespace

Transaction deserialize_transaction(ByteReader& reader) {
  Transaction tx;
  tx.id = read_digest(reader);
  const std::uint64_t parent_count = reader.read_u64();
  if (parent_count == 0 || parent_count > 64) {
    throw SerializeError("transaction has implausible parent count");
  }
  tx.parents.reserve(parent_count);
  for (std::uint64_t i = 0; i < parent_count; ++i) {
    tx.parents.push_back(read_digest(reader));
  }
  tx.payload_hash = read_digest(reader);
  tx.payload = reader.read_u64();
  tx.round = reader.read_u64();
  tx.nonce = reader.read_u64();
  tx.publisher = reader.read_string();
  return tx;
}

std::string short_id(const TransactionId& id) {
  return to_hex(id).substr(0, 8);
}

}  // namespace tanglefl::tangle
