#include "tangle/confidence.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "tangle/invariants.hpp"
#include "tangle/view_cache.hpp"

namespace tanglefl::tangle {
namespace {

obs::Counter& confidence_run_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.confidence.runs");
  return counter;
}

obs::Counter& confidence_sample_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.confidence.sample_walks");
  return counter;
}

obs::Histogram& confidence_timing_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.confidence_us", obs::BucketLayout::exponential(4.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

/// Shared sampling loop: `sample_tip` runs one tip-selection walk. Both
/// callers mark the sampled tip's past cone via the tangle's parent lists,
/// so cached and direct paths hit the same transactions.
template <typename SampleTip>
std::vector<double> sample_confidences(const TangleView& view,
                                       SampleTip&& sample_tip,
                                       const ConfidenceConfig& config) {
  obs::TraceScope span("tangle.compute_confidences",
                       &confidence_timing_histogram());
  confidence_run_counter().increment();
  confidence_sample_counter().add(config.sample_rounds);
  std::vector<double> confidence(view.size(), 0.0);
  if (view.size() == 0 || config.sample_rounds == 0) return confidence;

  std::vector<std::uint32_t> hits(view.size(), 0);
  std::vector<TxIndex> stack;
  std::vector<bool> seen(view.size());
  // Milestone pruning: the DFS never descends below the frontier, and
  // everything beneath it is pinned to confidence 1.0 afterwards — the
  // frontier is in the past cone of every tip, so frozen history is
  // confirmed by construction. floor == 0 (pruning off) changes nothing.
  const TxIndex floor = view.tangle().prune_floor();

  for (std::size_t round = 0; round < config.sample_rounds; ++round) {
    const TxIndex tip = sample_tip();
    // Mark the tip's entire (live) past cone as hit this round.
    std::fill(seen.begin(), seen.end(), false);
    stack.assign(1, tip);
    seen[tip] = true;
    while (!stack.empty()) {
      const TxIndex current = stack.back();
      stack.pop_back();
      ++hits[current];
      if (current == view.tangle().genesis()) continue;
      for (const TxIndex p : view.tangle().parent_indices(current)) {
        if (p >= floor && !seen[p]) {
          seen[p] = true;
          stack.push_back(p);
        }
      }
    }
  }

  const double inv = 1.0 / static_cast<double>(config.sample_rounds);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    confidence[i] = static_cast<double>(hits[i]) * inv;
  }
  for (TxIndex i = 0; i < floor && i < confidence.size(); ++i) {
    confidence[i] = 1.0;
  }
#if defined(TANGLEFL_DEBUG_CHECKS)
  const auto violations = find_confidence_violations(view, confidence);
  TANGLEFL_DCHECK_MSG(violations.empty(),
                      violations.empty() ? std::string{} : violations.front());
#endif
  return confidence;
}

}  // namespace

std::vector<double> compute_confidences(const TangleView& view, Rng& rng,
                                        const ConfidenceConfig& config) {
  if (view.size() == 0 || config.sample_rounds == 0) {
    return sample_confidences(view, [] { return TxIndex{0}; }, config);
  }
  const std::vector<std::uint32_t> future_cones = view.future_cone_sizes();
  return sample_confidences(
      view,
      [&] { return random_walk_tip(view, future_cones, rng,
                                   config.tip_selection); },
      config);
}

std::vector<double> compute_confidences(const TangleView& view,
                                        const ViewCacheEntry& cones, Rng& rng,
                                        const ConfidenceConfig& config) {
  return sample_confidences(
      view, [&] { return random_walk_tip(cones, rng, config.tip_selection); },
      config);
}

std::vector<double> compute_ratings(const TangleView& view) {
  const std::vector<std::uint32_t> past = view.past_cone_sizes();
  std::vector<double> ratings(past.size());
  for (std::size_t i = 0; i < past.size(); ++i) {
    ratings[i] = static_cast<double>(past[i]);
  }
  return ratings;
}

std::vector<double> compute_ratings(const ViewCacheEntry& cones) {
  const std::span<const std::uint32_t> past = cones.past_cone_sizes();
  std::vector<double> ratings(past.size());
  for (std::size_t i = 0; i < past.size(); ++i) {
    ratings[i] = static_cast<double>(past[i]);
  }
  return ratings;
}

}  // namespace tanglefl::tangle
