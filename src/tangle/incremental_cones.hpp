// Incrementally maintained cone state (the scaling layer under the view
// cache). The BitMatrix reachability pass of ViewCacheEntry::build costs
// O(n^2/64) bits of scratch per view — ~1.25 GB at 100k transactions —
// which caps simulations at thousands of transactions. But the tangle is
// append-only and engines serve monotonically growing prefix views, so the
// two cone-size vectors can be *maintained* instead of re-derived:
//
//   * past cone sizes are append-stable — appending transaction j never
//     changes past(i) for i < j, so past_[j] is computed once, by a single
//     parent-DFS over j's own past cone;
//   * future cone sizes grow by exactly one for every distinct ancestor of
//     an appended transaction — the same DFS bumps future_[a] as it visits.
//
// Cost per append is O(|past cone of j|) with O(n) words of persistent
// state, versus O(n^2/64) scratch bits per rebuild. With milestone pruning
// (tangle/milestones.hpp) the DFS additionally stops at the prune frontier,
// bounding per-append cost by the live window instead of ledger age.
//
// Frontier semantics under pruning (floor = Tangle::prune_floor() at the
// time of the append): the DFS never descends below the floor and
//   past_[j] = floor + |{ancestors of j with index >= floor}|,
// i.e. the frozen region [0, floor) is counted wholesale. This is exact
// when the appended transaction's cone covers the whole frozen region
// (which the milestone rule targets: the floor is in the past cone of
// every tip) and otherwise over-counts by the number of frozen orphans —
// the documented "frozen history is fully confirmed" approximation.
// future_ entries below the floor go stale (no walk reads them). With
// pruning disabled the floor is 0 and every value is exact — identical to
// the BitMatrix pass bit for bit.
//
// Not thread-safe; the owning ViewCache serializes access under its mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

class IncrementalConeState {
 public:
  /// Number of leading transactions whose cones are folded in.
  std::size_t processed() const noexcept { return processed_; }

  /// Cone sizes over the processed prefix, indexed by TxIndex.
  std::span<const std::uint32_t> past_cone_sizes() const noexcept {
    return past_;
  }
  std::span<const std::uint32_t> future_cone_sizes() const noexcept {
    return future_;
  }

  /// Folds transactions [processed(), count) into the state with one
  /// frontier DFS each (see file comment). `count` must not exceed
  /// tangle.size(); counts at or below processed() are a no-op. The caller
  /// must always pass the same Tangle instance (reset() to rebind).
  void advance_to(const Tangle& tangle, std::size_t count);

  /// Drops all state (used when the owner rebinds to another Tangle).
  void reset();

  /// Seeds the state from checkpointed arrays (tangle/checkpoint.hpp);
  /// both must have equal size. Replaces any existing state.
  void restore(std::vector<std::uint32_t> past,
               std::vector<std::uint32_t> future);

  /// Heap footprint of the maintained state — the number the 100k smoke
  /// run tracks to show cone memory stays O(n) words, not O(n^2/64) bits.
  std::size_t memory_bytes() const noexcept;

 private:
  std::size_t processed_ = 0;
  std::vector<std::uint32_t> past_;
  std::vector<std::uint32_t> future_;
  // DFS scratch: epoch-stamped visited marks avoid an O(n) clear per
  // append; the stack is reused across appends.
  std::vector<std::uint32_t> mark_;
  std::vector<TxIndex> stack_;
  std::uint32_t epoch_ = 0;
};

}  // namespace tanglefl::tangle
