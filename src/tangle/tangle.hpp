// The tangle DAG (Section II-C): vertices are transactions, directed edges
// are approvals of parent transactions. Transactions are append-only and
// stored in insertion order, which the simulation aligns with round order —
// so "the ledger as visible to a node in round r" is simply a prefix of the
// transaction vector (a TangleView).
//
// The two graph quantities the learning tangle needs are
//   * past cone size  — how many transactions a given transaction directly
//     or indirectly approves (the *rating* of Algorithm 1), and
//   * future cone size — how many transactions directly or indirectly
//     approve it (the *cumulative weight* steering the random walk).
// Both are computed exactly with bitset reachability over the view prefix.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/serialize.hpp"
#include "tangle/transaction.hpp"

namespace tanglefl::tangle {

class Tangle;

/// A consistent subset of the tangle. Two forms exist:
///   * a *prefix* view — the first `count` transactions, which models the
///     round-visibility barrier of Section IV (and publish-time horizons
///     in the asynchronous engine), and
///   * a *masked* view — an arbitrary ancestor-closed membership set,
///     which models a gossip replica that has only received part of the
///     ledger. Ancestor closure (every member's parents are members) is
///     the ledger "solidification" rule: a node never accepts a
///     transaction before its entire past cone; the constructor enforces
///     it.
/// All consensus queries (tips, cones, walks) run against a view.
class TangleView {
 public:
  TangleView(const Tangle& tangle, std::size_t count);

  /// Masked view over `membership` (indexed by TxIndex; missing trailing
  /// entries count as absent). The genesis must be a member and the set
  /// must be ancestor-closed; throws std::invalid_argument otherwise.
  TangleView(const Tangle& tangle, std::vector<bool> membership);

  const Tangle& tangle() const noexcept { return *tangle_; }
  /// Upper bound of member indices (prefix length for prefix views).
  std::size_t size() const noexcept { return count_; }
  /// Number of member transactions (== size() for prefix views).
  std::size_t member_count() const noexcept { return members_; }
  bool contains(TxIndex index) const noexcept {
    return index < count_ && (mask_.empty() || mask_[index]);
  }

  /// Transactions in this view with no approver inside the view.
  std::vector<TxIndex> tips() const;

  /// Direct approvers of `index` that lie inside the view.
  std::vector<TxIndex> approvers(TxIndex index) const;

  /// Number of transactions each transaction directly or indirectly
  /// approves (excluding itself), indexed by TxIndex.
  std::vector<std::uint32_t> past_cone_sizes() const;

  /// Number of transactions directly or indirectly approving each
  /// transaction (excluding itself), restricted to the view.
  std::vector<std::uint32_t> future_cone_sizes() const;

  /// True if `ancestor` is in the past cone of `descendant` (or equal).
  bool approves(TxIndex descendant, TxIndex ancestor) const;

 private:
  const Tangle* tangle_;
  std::size_t count_;
  std::size_t members_;
  std::vector<bool> mask_;  // empty = prefix view
};

class Tangle {
 public:
  /// Creates a tangle containing only the genesis transaction, whose
  /// payload is the (randomly initialized) starting model.
  explicit Tangle(PayloadId genesis_payload,
                  const Sha256Digest& genesis_payload_hash);

  /// Appends a transaction approving `parents` (at least one; duplicates
  /// are collapsed for the approval edges but preserved in the id
  /// preimage). Returns its index. Parents must already be present.
  TxIndex add_transaction(std::span<const TxIndex> parents, PayloadId payload,
                          const Sha256Digest& payload_hash,
                          std::uint64_t round, std::string publisher = {},
                          std::uint64_t nonce = 0);

  std::size_t size() const noexcept { return transactions_.size(); }
  const Transaction& transaction(TxIndex index) const {
    return transactions_.at(index);
  }
  const std::vector<Transaction>& transactions() const noexcept {
    return transactions_;
  }

  TxIndex genesis() const noexcept { return 0; }

  /// Prune frontier (see tangle/milestones.hpp): the index of the newest
  /// confirmed milestone. Tip-selection walks, biased walks, and
  /// confidence sampling never descend below it, Algorithm 1 candidacy is
  /// restricted to indices at or above it, and ModelStore payloads only
  /// referenced below it may be released. 0 (the default) means no pruning
  /// — walks root at the genesis exactly as before.
  TxIndex prune_floor() const noexcept { return prune_floor_; }

  /// Advances the prune frontier. The floor must be monotone and strictly
  /// inside the ledger; throws std::invalid_argument otherwise. Callers
  /// (MilestoneTracker) are responsible for the milestone property — the
  /// new floor must lie in the reflexive past cone of every tip of every
  /// view that will be walked.
  void set_prune_floor(TxIndex floor);

  /// Parent indices of a transaction (genesis approves itself).
  const std::vector<TxIndex>& parent_indices(TxIndex index) const {
    return parent_indices_.at(index);
  }

  /// Direct approvers (children) of a transaction, unrestricted.
  const std::vector<TxIndex>& approvers(TxIndex index) const {
    return approvers_.at(index);
  }

  /// Index lookup by id in O(1); nullopt if unknown.
  std::optional<TxIndex> find(const TransactionId& id) const;

  /// The whole ledger as a view.
  TangleView view() const { return TangleView(*this, size()); }
  /// The first `count` transactions as a view (count is clamped to size()).
  TangleView view_prefix(std::size_t count) const;

  /// Number of transactions published in rounds strictly before `round` —
  /// i.e. the size of the view a node participating in `round` sees.
  /// Requires transactions to have been appended in non-decreasing round
  /// order (the simulation engine guarantees this).
  std::size_t visible_count_for_round(std::uint64_t round) const;

  /// Binary round trip (headers only; payloads live in the ModelStore).
  void serialize(ByteWriter& writer) const;
  static Tangle deserialize(ByteReader& reader);

  /// Full structural audit (see tangle/invariants.hpp): acyclicity,
  /// solidity, approver accounting, cone monotonicity, header integrity.
  /// Returns one message per violation; empty means healthy. When the
  /// build defines TANGLEFL_DEBUG_CHECKS this audit also runs after every
  /// mutation and a violation throws tanglefl::CheckFailure.
  std::vector<std::string> check_invariants() const;

 private:
  Tangle() = default;  // for deserialize

  friend struct TangleTestAccess;  // test-only corruption hooks

  // Transaction ids are SHA-256 digests, already uniformly distributed, so
  // the first 8 bytes make a perfectly good table hash.
  struct TxIdHash {
    std::size_t operator()(const TransactionId& id) const noexcept {
      std::uint64_t h = 0;
      std::memcpy(&h, id.data(), sizeof(h));
      return static_cast<std::size_t>(h);
    }
  };

  std::vector<Transaction> transactions_;
  std::vector<std::vector<TxIndex>> parent_indices_;
  std::vector<std::vector<TxIndex>> approvers_;
  TxIndex prune_floor_ = 0;
  // id -> first index bearing it, maintained by every mutation path so
  // find() stays O(1) instead of a linear ledger scan.
  std::unordered_map<TransactionId, TxIndex, TxIdHash> index_by_id_;
};

}  // namespace tanglefl::tangle
