// Proof-of-work primitive (Section II-C / IV). IOTA requires a small PoW
// per transaction to throttle Sybil flooding. The paper's prototype leaves
// it disabled; we implement it so the substrate is complete, and benchmark
// it, but the experiments run with difficulty 0 like the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "tangle/transaction.hpp"

namespace tanglefl::tangle {

/// Searches nonces from 0 upward until the transaction id has at least
/// `difficulty_bits` leading zero bits. Returns the nonce, or nullopt if
/// `max_attempts` nonces were tried without success.
std::optional<std::uint64_t> solve_pow(std::span<const TransactionId> parents,
                                       const Sha256Digest& payload_hash,
                                       std::uint64_t round,
                                       int difficulty_bits,
                                       std::uint64_t max_attempts = 1ULL << 24);

/// Verifies that a transaction's stored id matches its fields and clears
/// the difficulty target.
bool verify_pow(const Transaction& tx, int difficulty_bits);

}  // namespace tanglefl::tangle
