#include "tangle/pow.hpp"

namespace tanglefl::tangle {

std::optional<std::uint64_t> solve_pow(std::span<const TransactionId> parents,
                                       const Sha256Digest& payload_hash,
                                       std::uint64_t round,
                                       int difficulty_bits,
                                       std::uint64_t max_attempts) {
  for (std::uint64_t nonce = 0; nonce < max_attempts; ++nonce) {
    const TransactionId id =
        compute_transaction_id(parents, payload_hash, round, nonce);
    if (leading_zero_bits(id) >= difficulty_bits) return nonce;
  }
  return std::nullopt;
}

bool verify_pow(const Transaction& tx, int difficulty_bits) {
  // Genesis self-referencing parents are rewritten after id derivation, so
  // recompute with the empty parent list for it.
  if (tx.is_genesis()) {
    const TransactionId genesis_id =
        compute_transaction_id({}, tx.payload_hash, tx.round, tx.nonce);
    return genesis_id == tx.id;
  }
  const TransactionId expected = compute_transaction_id(
      tx.parents, tx.payload_hash, tx.round, tx.nonce);
  if (expected != tx.id) return false;
  return leading_zero_bits(tx.id) >= difficulty_bits;
}

}  // namespace tanglefl::tangle
