// Consensus confidence (Section III-A): the confidence of a transaction is
// estimated by running tip selection many times and counting how often the
// transaction is (directly or indirectly) approved by the sampled tip —
// i.e. how often it lies in the sampled tip's past cone. Dividing the hit
// count by the number of sampling rounds yields a value in [0, 1].
#pragma once

#include <vector>

#include "support/rng.hpp"
#include "tangle/tangle.hpp"
#include "tangle/tip_selection.hpp"

namespace tanglefl::tangle {

struct ConfidenceConfig {
  std::size_t sample_rounds = 35;  // paper sets this to nodes-per-round
  TipSelectionConfig tip_selection;
};

class ViewCacheEntry;

/// Per-transaction confidence over `view`, indexed by TxIndex.
std::vector<double> compute_confidences(const TangleView& view, Rng& rng,
                                        const ConfidenceConfig& config);

/// Same, sampling walks over a shared cone cache entry instead of
/// recomputing the view's future cones (see tangle/view_cache.hpp).
/// Bit-identical to the direct overload for the same RNG state.
std::vector<double> compute_confidences(const TangleView& view,
                                        const ViewCacheEntry& cones, Rng& rng,
                                        const ConfidenceConfig& config);

/// Per-transaction rating (Section III-A): the number of transactions each
/// one directly or indirectly approves. In IOTA transactions may contribute
/// in different degrees depending on proof-of-work hardness; here all
/// transactions contribute equally, matching the paper's prototype.
std::vector<double> compute_ratings(const TangleView& view);

/// Same, from a shared cone cache entry's past cones.
std::vector<double> compute_ratings(const ViewCacheEntry& cones);

}  // namespace tanglefl::tangle
