#include "tangle/view_cache.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace tanglefl::tangle {
namespace {

// Cache effectiveness counters. Deterministic: the sequence of get() calls
// is fixed by (seed, config), never by scheduling.
obs::Counter& hit_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.view_cache.hit");
  return counter;
}

obs::Counter& miss_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.view_cache.miss");
  return counter;
}

obs::Counter& eviction_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.view_cache.evictions");
  return counter;
}

// An entry build performs one past- and one future-cone pass; it feeds the
// same counter TangleView::{past,future}_cone_sizes() use, so the PR-2
// metric keeps meaning "full cone recomputations" across both paths.
obs::Counter& cone_recompute_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.cone_recompute.count");
  return counter;
}

obs::Histogram& build_timing_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.view_cache.build_us", obs::BucketLayout::exponential(4.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

// Delta builds maintained by IncrementalConeState — counted separately
// from cone_recompute so the latter keeps meaning "full BitMatrix passes".
obs::Counter& incremental_build_counter() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "tangle.cones.incremental.builds");
  return counter;
}

obs::Histogram& incremental_build_timing_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.cones.incremental.build_us",
      obs::BucketLayout::exponential(4.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

// Below this view size the parallel fill's fork/join overhead outweighs the
// O(n^2/64) work; measured crossover is a few thousand transactions.
constexpr std::size_t kParallelMinCount = 2048;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Packs view membership into 64-bit words (LSB-first). Returns an empty
/// vector for prefix(-equivalent) views, normalizing "mask covers the whole
/// prefix" to the prefix identity.
std::vector<std::uint64_t> pack_membership(const TangleView& view) {
  if (view.member_count() == view.size()) return {};
  const std::size_t words = (view.size() + 63) / 64;
  std::vector<std::uint64_t> packed(words, 0);
  for (TxIndex i = 0; i < view.size(); ++i) {
    if (view.contains(i)) packed[i / 64] |= (1ULL << (i % 64));
  }
  return packed;
}

std::uint64_t hash_words(std::span<const std::uint64_t> words) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t w : words) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (w >> shift) & 0xff;
      h *= kFnvPrime;
    }
  }
  return h;
}

/// One word-column slice [word_begin, word_end) of the two reachability
/// passes. `bits` is the shared row-major matrix; slices write disjoint
/// words of every row, so concurrent slices never touch the same byte.
/// Popcounts accumulate into the caller-provided partial vectors.
struct ConeSlice {
  const TangleView* view;
  const std::vector<std::uint32_t>* offsets;  // CSR of in-view approvers
  const std::vector<TxIndex>* edges;
  std::uint64_t* bits;
  std::size_t words;  // full row stride
  std::size_t word_begin;
  std::size_t word_end;
  std::vector<std::uint32_t>* past_partial;
  std::vector<std::uint32_t>* future_partial;

  void set_bit(std::uint64_t* row, std::size_t bit) const {
    const std::size_t word = bit / 64;
    if (word >= word_begin && word < word_end) {
      row[word] |= (1ULL << (bit % 64));
    }
  }

  void or_row(std::uint64_t* dst, const std::uint64_t* src) const {
    for (std::size_t w = word_begin; w < word_end; ++w) dst[w] |= src[w];
  }

  std::uint32_t popcount_row(const std::uint64_t* row) const {
    std::uint32_t count = 0;
    for (std::size_t w = word_begin; w < word_end; ++w) {
      count += static_cast<std::uint32_t>(std::popcount(row[w]));
    }
    return count;
  }

  void zero_rows(std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t* row = bits + i * words;
      std::fill(row + word_begin, row + word_end, 0);
    }
  }

  void run() const {
    const std::size_t n = view->size();
    const Tangle& tangle = view->tangle();
    // Past pass: parents precede children, so one ascending pass closes
    // the transitive past relation (masked views are ancestor-closed).
    for (TxIndex i = 1; i < n; ++i) {
      if (!view->contains(i)) continue;
      std::uint64_t* row = bits + i * words;
      for (const TxIndex p : tangle.parent_indices(i)) {
        assert(p < i);
        set_bit(row, p);
        or_row(row, bits + p * words);
      }
      (*past_partial)[i] = popcount_row(row);
    }
    // Future pass over the same buffer: zero this slice, then one
    // descending pass over the in-view approver CSR.
    zero_rows(n);
    for (TxIndex ii = n; ii > 0; --ii) {
      const TxIndex i = ii - 1;
      if (!view->contains(i)) continue;
      std::uint64_t* row = bits + i * words;
      const std::uint32_t begin = (*offsets)[i];
      const std::uint32_t end = (*offsets)[i + 1];
      for (std::uint32_t e = begin; e < end; ++e) {
        const TxIndex child = (*edges)[e];
        set_bit(row, child);
        or_row(row, bits + child * words);
      }
      (*future_partial)[i] = popcount_row(row);
    }
  }
};

}  // namespace

void ViewCacheEntry::fill_topology(const TangleView& view) {
  // CSR adjacency snapshot: approver lists are in insertion (ascending)
  // order in the Tangle, so filtering preserves the exact sequence
  // TangleView::approvers() produces.
  const Tangle& tangle = view.tangle();
  const std::size_t n = view.size();
  offsets_.reserve(n + 1);
  offsets_.push_back(0);
  for (TxIndex i = 0; i < n; ++i) {
    if (view.contains(i)) {
      for (const TxIndex a : tangle.approvers(i)) {
        if (view.contains(a)) edges_.push_back(a);
      }
    }
    offsets_.push_back(static_cast<std::uint32_t>(edges_.size()));
  }
  for (TxIndex i = 0; i < n; ++i) {
    if (view.contains(i) && offsets_[i + 1] == offsets_[i]) {
      tips_.push_back(i);
    }
  }
}

std::shared_ptr<const ViewCacheEntry> ViewCacheEntry::build(
    const TangleView& view, ThreadPool* pool) {
  obs::TraceScope span("tangle.view_cache.build", &build_timing_histogram());
  cone_recompute_counter().add(2);  // one past + one future pass

  auto entry = std::shared_ptr<ViewCacheEntry>(new ViewCacheEntry());
  const std::size_t n = view.size();
  entry->count_ = n;
  entry->root_ = view.tangle().prune_floor();
  entry->past_.assign(n, 0);
  entry->future_.assign(n, 0);
  entry->fill_topology(view);
  if (n <= 1) return entry;

  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> bits(n * words, 0);

  std::size_t slices = 1;
  if (pool != nullptr && pool->thread_count() > 1 && n >= kParallelMinCount) {
    slices = std::min(words, pool->thread_count());
  }

  if (slices == 1) {
    ConeSlice slice{&view,        &entry->offsets_, &entry->edges_,
                    bits.data(),  words,            0,
                    words,        &entry->past_,    &entry->future_};
    slice.run();
  } else {
    // Each slice owns a word range of every row plus its own partial
    // popcount vectors; the reduction below is a plain integer sum, so the
    // result is bit-identical to the serial fill for any slice count.
    std::vector<std::vector<std::uint32_t>> past_partials(
        slices, std::vector<std::uint32_t>(n, 0));
    std::vector<std::vector<std::uint32_t>> future_partials(
        slices, std::vector<std::uint32_t>(n, 0));
    pool->parallel_for(slices, [&](std::size_t s) {
      const std::size_t begin = words * s / slices;
      const std::size_t end = words * (s + 1) / slices;
      ConeSlice slice{&view,       &entry->offsets_,  &entry->edges_,
                      bits.data(), words,             begin,
                      end,         &past_partials[s], &future_partials[s]};
      slice.run();
    });
    for (std::size_t s = 0; s < slices; ++s) {
      for (TxIndex i = 0; i < n; ++i) {
        entry->past_[i] += past_partials[s][i];
        entry->future_[i] += future_partials[s][i];
      }
    }
  }
  return entry;
}

std::shared_ptr<const ViewCacheEntry> ViewCacheEntry::build_incremental(
    const TangleView& view, IncrementalConeState& state) {
  obs::TraceScope span("tangle.cones.incremental.build",
                       &incremental_build_timing_histogram());
  incremental_build_counter().increment();

  const std::size_t n = view.size();
  state.advance_to(view.tangle(), n);
  auto entry = std::shared_ptr<ViewCacheEntry>(new ViewCacheEntry());
  entry->count_ = n;
  entry->root_ = view.tangle().prune_floor();
  const std::span<const std::uint32_t> past = state.past_cone_sizes();
  const std::span<const std::uint32_t> future = state.future_cone_sizes();
  entry->past_.assign(past.begin(), past.begin() + static_cast<long>(n));
  entry->future_.assign(future.begin(), future.begin() + static_cast<long>(n));
  entry->fill_topology(view);
  return entry;
}

std::shared_ptr<const ViewCacheEntry> ViewCache::get(const TangleView& view,
                                                     ThreadPool* pool) {
  const std::vector<std::uint64_t> mask_words = pack_membership(view);
  const std::uint64_t mask_hash =
      mask_words.empty() ? 0 : hash_words(mask_words);

  // Displaced state (an evicted slot, or everything dropped on rebinding)
  // is parked here and destroyed after the lock releases: a displaced
  // entry can hold the last reference to O(n^2/64) bits of cone snapshot,
  // and freeing that under mutex_ would stall every concurrent get().
  std::vector<Slot> displaced;
  std::shared_ptr<const ViewCacheEntry> result;
  {
    MutexLock lock(mutex_);
    // Defensive: a cache is bound to one Tangle instance; seeing another
    // one (e.g. after a test reuses the cache) drops all entries.
    if (tangle_ != &view.tangle()) {
      tangle_ = &view.tangle();
      cone_state_.reset();
      displaced.swap(slots_);
    }
    ++tick_;
    for (Slot& slot : slots_) {
      if (slot.count == view.size() && slot.members == view.member_count() &&
          slot.mask_hash == mask_hash && slot.mask_words == mask_words) {
        slot.last_used = tick_;
        hit_counter().increment();
        return slot.entry;
      }
    }
    miss_counter().increment();
    Slot slot;
    slot.count = view.size();
    slot.members = view.member_count();
    slot.mask_hash = mask_hash;
    slot.mask_words = mask_words;
    // Built under the lock on purpose: a second thread asking for the same
    // view blocks here and then *hits*, keeping the hit/miss counter
    // sequence deterministic (build-outside-lock would double-miss).
    //
    // The delta path serves prefix(-equivalent) views the incremental
    // state can reach monotonically. Masked views and shrinking requests
    // (e.g. the async engine's lagging wake horizons right after a
    // full-ledger eval) fall back to the full BitMatrix build — the state
    // only ever moves forward, so a later growing request resumes the
    // delta path where it left off.
    if (incremental_ && mask_words.empty() &&
        cone_state_.processed() <= view.size()) {
      slot.entry = ViewCacheEntry::build_incremental(view, cone_state_);
    } else {
      slot.entry = ViewCacheEntry::build(view, pool);
    }
    slot.last_used = tick_;
    if (capacity_ > 0 && slots_.size() >= capacity_) {
      const auto oldest = std::min_element(
          slots_.begin(), slots_.end(), [](const Slot& a, const Slot& b) {
            return a.last_used < b.last_used;
          });
      eviction_counter().increment();
      displaced.push_back(std::move(*oldest));
      *oldest = std::move(slot);
      result = oldest->entry;
    } else {
      slots_.push_back(std::move(slot));
      result = slots_.back().entry;
    }
  }
  return result;
}

void ViewCache::clear() {
  // Swap out under the lock, destroy outside it (see get()).
  std::vector<Slot> dropped;
  {
    MutexLock lock(mutex_);
    dropped.swap(slots_);
  }
}

std::size_t ViewCache::size() const {
  MutexLock lock(mutex_);
  return slots_.size();
}

ViewCache::ConeStateSnapshot ViewCache::cone_state_snapshot() const {
  MutexLock lock(mutex_);
  const std::span<const std::uint32_t> past = cone_state_.past_cone_sizes();
  const std::span<const std::uint32_t> future =
      cone_state_.future_cone_sizes();
  return ConeStateSnapshot{{past.begin(), past.end()},
                           {future.begin(), future.end()}};
}

void ViewCache::restore_cone_state(const Tangle& tangle,
                                   ConeStateSnapshot snapshot) {
  std::vector<Slot> displaced;
  {
    MutexLock lock(mutex_);
    // Bind to the restored tangle so the next get() does not treat it as a
    // rebind and wipe the seeded state.
    tangle_ = &tangle;
    displaced.swap(slots_);
    cone_state_.restore(std::move(snapshot.past), std::move(snapshot.future));
  }
}

}  // namespace tanglefl::tangle
