#include "tangle/incremental_cones.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace tanglefl::tangle {
namespace {

obs::Counter& appended_counter() {
  static obs::Counter& counter = obs::MetricsRegistry::global().counter(
      "tangle.cones.incremental.appended");
  return counter;
}

obs::Gauge& state_bytes_gauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::global().gauge("tangle.cones.incremental.bytes");
  return gauge;
}

}  // namespace

void IncrementalConeState::advance_to(const Tangle& tangle,
                                      std::size_t count) {
  TANGLEFL_DCHECK(count <= tangle.size());
  if (count <= processed_) return;
  appended_counter().add(count - processed_);
  const TxIndex floor = tangle.prune_floor();
  past_.resize(count, 0);
  future_.resize(count, 0);
  if (mark_.size() < count) mark_.resize(count, 0);

  for (TxIndex j = processed_; j < count; ++j) {
    if (j == 0) continue;  // genesis: empty past cone
    if (++epoch_ == 0) {
      // Epoch counter wrapped; invalidate all stale marks once.
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
    stack_.clear();
    for (const TxIndex p : tangle.parent_indices(j)) {
      if (p < floor || mark_[p] == epoch_) continue;
      mark_[p] = epoch_;
      stack_.push_back(p);
    }
    std::uint32_t visited = 0;
    while (!stack_.empty()) {
      const TxIndex a = stack_.back();
      stack_.pop_back();
      ++visited;
      future_[a] += 1;
      if (a == 0) continue;  // genesis self-parent would loop
      for (const TxIndex p : tangle.parent_indices(a)) {
        if (p < floor || mark_[p] == epoch_) continue;
        mark_[p] = epoch_;
        stack_.push_back(p);
      }
    }
    // Frozen region counted wholesale — see file comment in the header.
    past_[j] = static_cast<std::uint32_t>(floor) + visited;
  }
  processed_ = count;
  state_bytes_gauge().set(static_cast<double>(memory_bytes()));
}

void IncrementalConeState::reset() {
  processed_ = 0;
  past_.clear();
  future_.clear();
  mark_.clear();
  stack_.clear();
  epoch_ = 0;
}

void IncrementalConeState::restore(std::vector<std::uint32_t> past,
                                   std::vector<std::uint32_t> future) {
  TANGLEFL_DCHECK(past.size() == future.size());
  reset();
  processed_ = past.size();
  past_ = std::move(past);
  future_ = std::move(future);
}

std::size_t IncrementalConeState::memory_bytes() const noexcept {
  return (past_.capacity() + future_.capacity() + mark_.capacity()) *
             sizeof(std::uint32_t) +
         stack_.capacity() * sizeof(TxIndex);
}

}  // namespace tanglefl::tangle
