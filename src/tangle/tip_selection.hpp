// Tip selection: a weighted random walk from the genesis transaction
// towards the tips, moving opposite the direction of approvals
// (Section II-C). At each step the walk picks one of the current
// transaction's approvers with probability proportional to
// exp(alpha * cumulative_weight), the IOTA MCMC transition rule; alpha is
// the "randomness factor" the robustness of the tangle depends on
// (Section V-B, [32]). alpha = 0 degenerates to an unbiased random walk,
// large alpha to a deterministic heaviest-subtangle descent.
//
// As in the paper's prototype, walks always start at genesis rather than at
// a depth-windowed particle (Section IV).
#pragma once

#include <vector>

#include "support/rng.hpp"
#include "tangle/tangle.hpp"

namespace tanglefl::tangle {

class ViewCacheEntry;

enum class TipSelectionMethod {
  kWeightedWalk,  // MCMC walk biased by cumulative weight (IOTA default)
  kUniform,       // uniform random tip selection (URTS, [18] in the paper)
};

struct TipSelectionConfig {
  TipSelectionMethod method = TipSelectionMethod::kWeightedWalk;
  double alpha = 0.01;  // walk bias towards heavier branches
};

/// Uniformly random member of view.tips() — URTS. Cheap but offers no
/// protection against lazy/parasite chains, which is why IOTA (and the
/// paper) use the weighted walk; exposed for comparison experiments.
TxIndex uniform_random_tip(const TangleView& view, Rng& rng);

/// One weighted random walk over `view`; returns the reached tip.
/// `future_cones` must be view.future_cone_sizes() (passed in so repeated
/// walks over the same view share the computation).
TxIndex random_walk_tip(const TangleView& view,
                        std::span<const std::uint32_t> future_cones, Rng& rng,
                        const TipSelectionConfig& config);

/// Allocation-free walk over a prebuilt cone cache entry (see
/// tangle/view_cache.hpp). Consumes the RNG identically to the TangleView
/// overload, so cached and direct runs are bit-identical.
TxIndex random_walk_tip(const ViewCacheEntry& cones, Rng& rng,
                        const TipSelectionConfig& config);

/// Runs `count` independent walks and returns the reached tips (duplicates
/// possible — two walks may end at the same tip, and the paper allows the
/// two chosen tips to coincide). Under kUniform the tip set is scanned
/// once per call, not once per draw.
std::vector<TxIndex> select_tips(const TangleView& view, std::size_t count,
                                 Rng& rng, const TipSelectionConfig& config);

/// Same, over a shared cone cache entry (no per-call cone recompute or tip
/// scan).
std::vector<TxIndex> select_tips(const ViewCacheEntry& cones,
                                 std::size_t count, Rng& rng,
                                 const TipSelectionConfig& config);

}  // namespace tanglefl::tangle
