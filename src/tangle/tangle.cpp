#include "tangle/tangle.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "tangle/invariants.hpp"

namespace tanglefl::tangle {
namespace {

obs::Counter& add_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.transactions.added");
  return counter;
}

// Rounds (micros for the async engine) between a transaction and each
// distinct parent it approves: the paper's parent-approval depth. Genesis
// approvals from round-1 publishers land in the first bucket.
obs::Histogram& approval_depth_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.approval_depth", obs::BucketLayout::exponential(1.0, 4.0, 16));
  return hist;
}

// Cumulative-weight recomputation is the O(n^2/64) hot spot of tip
// selection and confidence; count invocations and (timing-only) wall cost.
obs::Counter& cone_recompute_counter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("tangle.cone_recompute.count");
  return counter;
}

obs::Histogram& cone_recompute_timing_histogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::global().histogram(
      "tangle.cone_recompute_us", obs::BucketLayout::exponential(4.0, 4.0, 12),
      /*timing=*/true);
  return hist;
}

// Re-audits the whole structure after a mutation when the build opts into
// debug checks; compiles to nothing otherwise. Kept out of line so the
// mutation paths stay readable.
inline void debug_check_invariants([[maybe_unused]] const Tangle& tangle) {
#if defined(TANGLEFL_DEBUG_CHECKS)
  assert_invariants(tangle);
#endif
}

/// Row-major bitset matrix for exact reachability over a view prefix.
class BitMatrix {
 public:
  explicit BitMatrix(std::size_t n)
      : words_((n + 63) / 64), bits_(n * words_, 0) {}

  void set(std::size_t row, std::size_t bit) {
    bits_[row * words_ + bit / 64] |= (1ULL << (bit % 64));
  }

  void or_row(std::size_t dst, std::size_t src) {
    std::uint64_t* d = bits_.data() + dst * words_;
    const std::uint64_t* s = bits_.data() + src * words_;
    for (std::size_t w = 0; w < words_; ++w) d[w] |= s[w];
  }

  std::uint32_t popcount_row(std::size_t row) const {
    const std::uint64_t* r = bits_.data() + row * words_;
    std::uint32_t count = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      count += static_cast<std::uint32_t>(std::popcount(r[w]));
    }
    return count;
  }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace

// ------------------------------------------------------------- TangleView

TangleView::TangleView(const Tangle& tangle, std::size_t count)
    : tangle_(&tangle), count_(std::min(count, tangle.size())) {
  members_ = count_;
}

TangleView::TangleView(const Tangle& tangle, std::vector<bool> membership)
    : tangle_(&tangle), mask_(std::move(membership)) {
  mask_.resize(tangle.size(), false);
  count_ = 0;
  members_ = 0;
  for (TxIndex i = 0; i < mask_.size(); ++i) {
    if (!mask_[i]) continue;
    ++members_;
    count_ = i + 1;
    // Ancestor closure: a node only accepts solid transactions.
    for (const TxIndex p : tangle.parent_indices(i)) {
      if (!mask_[p]) {
        throw std::invalid_argument(
            "TangleView: membership is not ancestor-closed");
      }
    }
  }
  if (members_ == 0 || !mask_[tangle.genesis()]) {
    throw std::invalid_argument("TangleView: genesis must be a member");
  }
}

std::vector<TxIndex> TangleView::tips() const {
  std::vector<TxIndex> result;
  for (TxIndex i = 0; i < count_; ++i) {
    if (!contains(i)) continue;
    const auto& approvers = tangle_->approvers(i);
    const bool approved_in_view =
        std::any_of(approvers.begin(), approvers.end(),
                    [this](TxIndex a) { return contains(a); });
    if (!approved_in_view) result.push_back(i);
  }
  return result;
}

std::vector<TxIndex> TangleView::approvers(TxIndex index) const {
  assert(contains(index));
  std::vector<TxIndex> result;
  for (const TxIndex a : tangle_->approvers(index)) {
    if (contains(a)) result.push_back(a);
  }
  return result;
}

std::vector<std::uint32_t> TangleView::past_cone_sizes() const {
  obs::TraceScope span("tangle.past_cone_sizes",
                       &cone_recompute_timing_histogram());
  cone_recompute_counter().increment();
  BitMatrix reach(count_);
  std::vector<std::uint32_t> sizes(count_, 0);
  // Parents always precede children in insertion order, so one ascending
  // pass closes the transitive past relation. Masked views are
  // ancestor-closed, so every member's parents are members too.
  for (TxIndex i = 1; i < count_; ++i) {
    if (!contains(i)) continue;
    for (const TxIndex p : tangle_->parent_indices(i)) {
      assert(p < i);
      reach.set(i, p);
      reach.or_row(i, p);
    }
    sizes[i] = reach.popcount_row(i);
  }
  return sizes;
}

std::vector<std::uint32_t> TangleView::future_cone_sizes() const {
  obs::TraceScope span("tangle.future_cone_sizes",
                       &cone_recompute_timing_histogram());
  cone_recompute_counter().increment();
  BitMatrix reach(count_);
  std::vector<std::uint32_t> sizes(count_, 0);
  for (TxIndex ii = count_; ii > 0; --ii) {
    const TxIndex i = ii - 1;
    if (!contains(i)) continue;
    for (const TxIndex child : tangle_->approvers(i)) {
      if (!contains(child)) continue;
      reach.set(i, child);
      reach.or_row(i, child);
    }
    sizes[i] = reach.popcount_row(i);
  }
  return sizes;
}

bool TangleView::approves(TxIndex descendant, TxIndex ancestor) const {
  assert(contains(descendant) && contains(ancestor));
  if (descendant == ancestor) return true;
  if (ancestor > descendant) return false;  // edges only point backwards
  // DFS through parents; indices below `ancestor` cannot reach it because
  // approval edges always point to smaller indices.
  std::vector<TxIndex> stack = {descendant};
  std::vector<bool> seen(descendant + 1, false);
  while (!stack.empty()) {
    const TxIndex current = stack.back();
    stack.pop_back();
    if (current == ancestor) return true;
    if (current == 0) continue;  // genesis
    for (const TxIndex p : tangle_->parent_indices(current)) {
      if (p >= ancestor && !seen[p]) {
        seen[p] = true;
        stack.push_back(p);
      }
    }
  }
  return false;
}

// ----------------------------------------------------------------- Tangle

Tangle::Tangle(PayloadId genesis_payload,
               const Sha256Digest& genesis_payload_hash) {
  Transaction genesis;
  genesis.payload = genesis_payload;
  genesis.payload_hash = genesis_payload_hash;
  genesis.round = 0;
  genesis.publisher = "genesis";
  // The genesis id is derived from an empty parent list, then the
  // transaction is marked self-approving by convention.
  genesis.id = compute_transaction_id({}, genesis.payload_hash, genesis.round,
                                      genesis.nonce);
  genesis.parents = {genesis.id};
  index_by_id_.emplace(genesis.id, 0);
  transactions_.push_back(std::move(genesis));
  parent_indices_.push_back({0});
  approvers_.emplace_back();
  debug_check_invariants(*this);
}

TxIndex Tangle::add_transaction(std::span<const TxIndex> parents,
                                PayloadId payload,
                                const Sha256Digest& payload_hash,
                                std::uint64_t round, std::string publisher,
                                std::uint64_t nonce) {
  obs::TraceScope span("tangle.add_transaction");
  if (parents.empty()) {
    throw std::invalid_argument("add_transaction: no parents");
  }
  for (const TxIndex p : parents) {
    if (p >= transactions_.size()) {
      throw std::out_of_range("add_transaction: unknown parent index");
    }
  }
  if (!transactions_.empty() && round < transactions_.back().round) {
    throw std::invalid_argument(
        "add_transaction: rounds must be non-decreasing");
  }

  Transaction tx;
  tx.parents.reserve(parents.size());
  for (const TxIndex p : parents) tx.parents.push_back(transactions_[p].id);
  tx.payload = payload;
  tx.payload_hash = payload_hash;
  tx.round = round;
  tx.nonce = nonce;
  tx.publisher = std::move(publisher);
  tx.id = compute_transaction_id(tx.parents, tx.payload_hash, tx.round,
                                 tx.nonce);

  const TxIndex index = transactions_.size();
  // emplace keeps the first index on an id collision, preserving find()'s
  // historical first-match semantics.
  index_by_id_.emplace(tx.id, index);
  transactions_.push_back(std::move(tx));
  parent_indices_.emplace_back(parents.begin(), parents.end());
  approvers_.emplace_back();
  // Register each distinct parent once as an approval edge.
  std::vector<TxIndex> distinct(parents.begin(), parents.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (const TxIndex p : distinct) {
    approvers_[p].push_back(index);
    approval_depth_histogram().record(
        static_cast<double>(round - transactions_[p].round));
  }
  add_counter().increment();
  debug_check_invariants(*this);
  return index;
}

std::optional<TxIndex> Tangle::find(const TransactionId& id) const {
  const auto it = index_by_id_.find(id);
  if (it == index_by_id_.end()) return std::nullopt;
  return it->second;
}

TangleView Tangle::view_prefix(std::size_t count) const {
  return TangleView(*this, count);
}

void Tangle::set_prune_floor(TxIndex floor) {
  if (floor < prune_floor_) {
    throw std::invalid_argument(
        "Tangle::set_prune_floor: frontier must advance monotonically");
  }
  if (floor >= size()) {
    throw std::invalid_argument(
        "Tangle::set_prune_floor: frontier outside the ledger");
  }
  prune_floor_ = floor;
}

std::size_t Tangle::visible_count_for_round(std::uint64_t round) const {
  // Transactions are appended in round order; binary-search the boundary.
  const auto it = std::lower_bound(
      transactions_.begin(), transactions_.end(), round,
      [](const Transaction& tx, std::uint64_t r) { return tx.round < r; });
  return static_cast<std::size_t>(it - transactions_.begin());
}

void Tangle::serialize(ByteWriter& writer) const {
  writer.write_u64(transactions_.size());
  for (std::size_t i = 0; i < transactions_.size(); ++i) {
    serialize_transaction(transactions_[i], writer);
    writer.write_u64(parent_indices_[i].size());
    for (const TxIndex p : parent_indices_[i]) writer.write_u64(p);
  }
}

Tangle Tangle::deserialize(ByteReader& reader) {
  Tangle tangle;
  const std::uint64_t count = reader.read_u64();
  tangle.transactions_.reserve(count);
  tangle.parent_indices_.reserve(count);
  tangle.approvers_.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Transaction tx = deserialize_transaction(reader);
    const std::uint64_t parent_count = reader.read_u64();
    if (parent_count == 0 || parent_count > 64) {
      throw SerializeError("tangle: implausible parent count");
    }
    std::vector<TxIndex> parents;
    parents.reserve(parent_count);
    for (std::uint64_t k = 0; k < parent_count; ++k) {
      parents.push_back(static_cast<TxIndex>(reader.read_u64()));
    }
    if (i > 0) {
      std::vector<TxIndex> distinct = parents;
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (const TxIndex p : distinct) {
        if (p >= i) throw SerializeError("tangle: parent after child");
        tangle.approvers_[p].push_back(i);
      }
    }
    // Ids are content hashes; seeing one twice means a corrupt or forged
    // stream, not a legitimate ledger.
    if (!tangle.index_by_id_.emplace(tx.id, static_cast<TxIndex>(i)).second) {
      throw SerializeError("tangle: duplicate transaction id");
    }
    tangle.transactions_.push_back(std::move(tx));
    tangle.parent_indices_.push_back(std::move(parents));
  }
  if (tangle.transactions_.empty()) {
    throw SerializeError("tangle: missing genesis");
  }
  debug_check_invariants(tangle);
  return tangle;
}

}  // namespace tanglefl::tangle
