// Transactions of the learning tangle. Unlike a cryptocurrency ledger, the
// payload of a transaction is a full set of model parameters (Section III);
// the transaction header holds the approved parents, the payload's content
// hash, the publishing round, and an optional proof-of-work nonce.
//
// A standard tangle transaction approves exactly two (not necessarily
// distinct) tips; the paper's hyperparameter study also publishes
// transactions that approve three tips ("# tips (n)" in Table II), so the
// parent list is variable-length with a minimum of one entry.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/serialize.hpp"
#include "support/sha256.hpp"

namespace tanglefl::tangle {

/// Content hash identifying a transaction.
using TransactionId = Sha256Digest;

/// Handle into the ModelStore holding the parameter payload.
using PayloadId = std::uint64_t;

/// Index of a transaction inside one Tangle instance (insertion order).
using TxIndex = std::size_t;

constexpr TxIndex kInvalidTxIndex = static_cast<TxIndex>(-1);

struct Transaction {
  TransactionId id{};
  // Approved parent ids; the genesis transaction references itself once.
  // Parents need not be distinct (Section II-C).
  std::vector<TransactionId> parents;
  Sha256Digest payload_hash{};
  PayloadId payload = 0;
  std::uint64_t round = 0;   // publishing round (visibility barrier)
  std::uint64_t nonce = 0;   // proof-of-work nonce; 0 when PoW is disabled
  // Publisher tag used only for diagnostics/metrics. It deliberately plays
  // no role in consensus: participants are anonymous (Section III-D).
  std::string publisher;

  bool is_genesis() const noexcept {
    return parents.size() == 1 && parents.front() == id;
  }
};

/// Computes a transaction id from its consensus-relevant fields (parents,
/// payload hash, round, nonce). The publisher tag is excluded on purpose.
TransactionId compute_transaction_id(std::span<const TransactionId> parents,
                                     const Sha256Digest& payload_hash,
                                     std::uint64_t round, std::uint64_t nonce);

/// Binary round trip for ledger persistence.
void serialize_transaction(const Transaction& tx, ByteWriter& writer);
Transaction deserialize_transaction(ByteReader& reader);

/// Short printable prefix of an id, for logs and DOT labels.
std::string short_id(const TransactionId& id);

}  // namespace tanglefl::tangle
