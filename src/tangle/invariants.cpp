#include "tangle/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace tanglefl::tangle {
namespace {

template <typename... Parts>
void report(std::vector<std::string>& out, Parts&&... parts) {
  std::ostringstream message;
  (message << ... << parts);
  out.push_back(message.str());
}

/// Distinct, sorted copy of a parent list (the edge set used for approver
/// accounting — duplicates collapse to one approval edge).
std::vector<TxIndex> distinct_sorted(const std::vector<TxIndex>& parents) {
  std::vector<TxIndex> distinct = parents;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  return distinct;
}

}  // namespace

std::vector<std::string> find_invariant_violations(const Tangle& tangle) {
  std::vector<std::string> violations;
  const std::size_t n = tangle.size();

  if (n == 0) {
    report(violations, "tangle is empty: the genesis transaction is missing");
    return violations;
  }

  // --- genesis conventions ------------------------------------------------
  {
    const Transaction& genesis = tangle.transaction(0);
    if (!genesis.is_genesis()) {
      report(violations,
             "genesis (index 0) is not self-approving: expected exactly one "
             "parent id equal to its own id, got ",
             genesis.parents.size(), " parent id(s)");
    }
    const auto& gparents = tangle.parent_indices(0);
    if (gparents != std::vector<TxIndex>{0}) {
      report(violations,
             "genesis parent indices must be {0} (self-loop by convention), "
             "got a list of size ",
             gparents.size());
    }
  }

  // --- per-transaction structure -----------------------------------------
  // Acyclicity holds iff every edge points strictly backwards in insertion
  // order, so a forward or self parent *is* a cycle witness.
  for (TxIndex i = 1; i < n; ++i) {
    const Transaction& tx = tangle.transaction(i);
    const auto& parents = tangle.parent_indices(i);

    if (parents.empty()) {
      report(violations, "tx ", i, ": no parents (every non-genesis ",
             "transaction must approve at least one tip)");
      continue;
    }
    bool parents_ok = true;
    for (const TxIndex p : parents) {
      if (p >= n) {
        report(violations, "tx ", i, ": parent index ", p,
               " does not exist (tangle size ", n, ")");
        parents_ok = false;
      } else if (p >= i) {
        report(violations, "tx ", i, ": parent index ", p,
               " is not an earlier transaction — approval edges must point "
               "backwards; this edge closes a cycle");
        parents_ok = false;
      }
    }
    if (parents.size() != tx.parents.size()) {
      report(violations, "tx ", i, ": header lists ", tx.parents.size(),
             " parent id(s) but the index maps ", parents.size());
      parents_ok = false;
    }
    if (parents_ok) {
      for (std::size_t k = 0; k < parents.size(); ++k) {
        if (tangle.transaction(parents[k]).id != tx.parents[k]) {
          report(violations, "tx ", i, ": parent id #", k,
                 " does not match the id of parent index ", parents[k]);
        }
      }
    }

    if (tx.round < tangle.transaction(i - 1).round) {
      report(violations, "tx ", i, ": round ", tx.round,
             " precedes round ", tangle.transaction(i - 1).round, " of tx ",
             i - 1, " — rounds must be non-decreasing in insertion order");
    }

    const TransactionId expected = compute_transaction_id(
        tx.parents, tx.payload_hash, tx.round, tx.nonce);
    if (expected != tx.id) {
      report(violations, "tx ", i, ": id does not hash its consensus fields",
             " (parents/payload-hash/round/nonce) — forged or stale header");
    }
  }

  // --- approver accounting ------------------------------------------------
  // approvers_ must be the exact inverse of the distinct parent edges, in
  // insertion (== ascending child) order. The biased walk derives its
  // cumulative weights from these lists, so a stale entry skews every walk.
  {
    std::vector<std::vector<TxIndex>> expected(n);
    for (TxIndex i = 1; i < n; ++i) {
      for (const TxIndex p : distinct_sorted(tangle.parent_indices(i))) {
        if (p < i) expected[p].push_back(i);
      }
    }
    for (TxIndex i = 0; i < n; ++i) {
      if (tangle.approvers(i) != expected[i]) {
        report(violations, "tx ", i, ": approver list is inconsistent with ",
               "the parent lists (stored ", tangle.approvers(i).size(),
               " approver(s), recomputed ", expected[i].size(),
               ") — approver accounting is stale");
      }
    }
  }

  // The cone computations assume the structural invariants above; with a
  // corrupt edge set their preconditions (e.g. parents precede children)
  // do not hold, so only audit cones on a structurally sound tangle.
  if (!violations.empty()) return violations;

  // --- cone consistency ---------------------------------------------------
  // The rating (past cone) and cumulative weight (future cone) must grow
  // strictly along approval edges: a child sees everything its parent sees
  // plus the parent itself, and symmetrically for approvers.
  {
    const TangleView view = tangle.view();
    const std::vector<std::uint32_t> past = view.past_cone_sizes();
    const std::vector<std::uint32_t> future = view.future_cone_sizes();
    for (TxIndex i = 1; i < n; ++i) {
      for (const TxIndex p : distinct_sorted(tangle.parent_indices(i))) {
        if (past[i] < past[p] + 1) {
          report(violations, "tx ", i, ": past cone size ", past[i],
                 " is not larger than parent ", p, "'s (", past[p],
                 ") — rating monotonicity violated");
        }
        if (future[p] < future[i] + 1) {
          report(violations, "tx ", p, ": future cone size ", future[p],
                 " is not larger than approver ", i, "'s (", future[i],
                 ") — cumulative weight monotonicity violated");
        }
      }
    }
  }

  return violations;
}

std::vector<std::string> find_confidence_violations(
    const TangleView& view, std::span<const double> confidence) {
  std::vector<std::string> violations;
  if (confidence.size() != view.size()) {
    report(violations, "confidence vector has ", confidence.size(),
           " entries for a view of size ", view.size());
    return violations;
  }
  for (TxIndex i = 0; i < confidence.size(); ++i) {
    if (!view.contains(i)) continue;
    const double c = confidence[i];
    if (!(c >= 0.0 && c <= 1.0) || std::isnan(c)) {
      report(violations, "tx ", i, ": confidence ", c,
             " is outside [0, 1]");
    }
  }
  // Every sampled walk that hits an approver also hits all of its parents
  // (the hit set is a past cone), so confidence can only shrink walking
  // forward: conf(parent) >= conf(child) along every in-view edge.
  for (TxIndex i = 1; i < confidence.size(); ++i) {
    if (!view.contains(i)) continue;
    for (const TxIndex p : view.tangle().parent_indices(i)) {
      if (p == i || !view.contains(p)) continue;
      if (confidence[p] + 1e-12 < confidence[i]) {
        report(violations, "tx ", p, ": confidence ", confidence[p],
               " is below approver ", i, "'s confidence ", confidence[i],
               " — monotonicity along approval edges violated");
      }
    }
  }
  return violations;
}

void assert_invariants(const Tangle& tangle) {
  const std::vector<std::string> violations =
      find_invariant_violations(tangle);
  if (violations.empty()) return;
  std::ostringstream message;
  message << "tangle invariants violated (" << violations.size() << "):";
  for (const std::string& v : violations) message << "\n  - " << v;
  throw CheckFailure(message.str());
}

std::vector<std::string> Tangle::check_invariants() const {
  return find_invariant_violations(*this);
}

}  // namespace tanglefl::tangle
